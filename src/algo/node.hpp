// Decentralized-learning node framework — the base class every algorithm
// in src/algo/ derives from, and the interface the sim/ engine drives.
//
// Every algorithm follows the paper's train-communicate-aggregate round
// structure (§II-A): the engine calls local_train() on every node (tau SGD
// steps on the node's partition), then share() (messages go out through the
// simulated net::Network), then aggregate() (mailboxes are drained and
// models merged under the topology's mixing weights). Algorithms differ
// only in what share()/aggregate() put on the wire — full_sharing sends the
// dense model, random_sampling a seeded index sample, choco an
// error-feedback-compressed difference, and jwins_node the wavelet-ranked
// randomized-cut-off payload of Algorithm 1. JWINS' claim is precisely that
// it is independent of the rest of the DL stack: DlNode gives every
// algorithm the identical model/optimizer/data substrate so byte and
// accuracy comparisons isolate the communication policy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/averaging.hpp"
#include "core/rng.hpp"
#include "core/scratch.hpp"
#include "data/dataset.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "nn/model.hpp"
#include "nn/sgd.hpp"

namespace jwins::algo {

/// How a byzantine node corrupts the payloads it transmits. Corruption is
/// wire-only: the attacker trains and aggregates honestly (its own model
/// stays sane), but every value span it encodes for the network is replaced
/// just before serialization, so the corruption flows through the real
/// codec/network path on both engines (docs/SIMULATION.md "Adversarial
/// behavior").
enum class ByzantineMode {
  kRandom,    ///< replace values with seeded uniform [-1, 1) noise
  kSignFlip,  ///< negate every value
  kScale,     ///< multiply every value by a constant k
};

const char* byzantine_mode_name(ByzantineMode mode);

/// Seeded byzantine victim choice — the same construction net::TimeModel
/// uses for its crash set (sort every node by a derived hash, take the first
/// `count`), under a distinct salt so crash and byzantine sets are
/// independent draws. A pure function of (seed, nodes), so validation code
/// can reproduce the set without building an Experiment. Returned ascending.
std::vector<std::uint32_t> byzantine_victims(std::uint64_t seed,
                                             std::size_t nodes,
                                             std::size_t count);

struct TrainConfig {
  std::size_t local_steps = 1;  ///< tau in the paper
  nn::Sgd::Options sgd;

  /// Experiment seed; every per-node random stream (round_rng) derives from
  /// (seed, rank, round) so runs are reproducible at any thread count.
  std::uint64_t seed = 1;
};

class DlNode {
 public:
  DlNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
         data::Sampler sampler, TrainConfig config);
  virtual ~DlNode() = default;

  DlNode(const DlNode&) = delete;
  DlNode& operator=(const DlNode&) = delete;

  std::uint32_t rank() const noexcept { return rank_; }

  /// Retargets this node object at another simulated node's identity: rank,
  /// data shard, and sampler-stream position (counter-mode samplers only —
  /// the shuffle sampler's stream is stateful and cannot be repositioned).
  /// The compact node-state engine binds one lane-worker node per execution
  /// lane to millions of (rank, shard, params) triples this way; model
  /// parameters are loaded separately via set_flat_params().
  void rebind(std::uint32_t rank, std::span<const std::size_t> shard,
              std::uint64_t sampler_seed, std::size_t sampler_step) {
    rank_ = rank;
    sampler_.rebind(shard, sampler_seed, sampler_step);
  }

  /// Runs tau mini-batch SGD steps on local data. Returns mean train loss.
  float local_train();

  /// Sends this round's messages to the neighbors in `g`. `scratch` is this
  /// call's workspace (reset by the implementation on entry): the engine
  /// hands each execution lane its own RoundScratch, so steady-state rounds
  /// allocate nothing. Anything that must survive into aggregate() lives in
  /// node members, never in scratch.
  virtual void share(net::Network& network, const graph::Graph& g,
                     const graph::MixingWeights& weights, std::uint32_t round,
                     core::RoundScratch& scratch) = 0;

  /// Drains the mailbox and merges neighbor contributions into the model.
  /// Same scratch contract as share().
  virtual void aggregate(net::Network& network, const graph::Graph& g,
                         const graph::MixingWeights& weights,
                         std::uint32_t round,
                         core::RoundScratch& scratch) = 0;

  nn::SupervisedModel& model() noexcept { return *model_; }

  /// Flat view of the current model parameters.
  std::vector<float> flat_params();
  /// Reuse variants: copy into caller storage (resized / sized to
  /// param_count()) instead of allocating.
  void flat_params_into(std::vector<float>& out);
  void flat_params_into(std::span<float> out);
  void set_flat_params(std::span<const float> flat);
  std::size_t param_count();

  /// Adjusts the local optimizer's step size (for learning-rate schedules).
  void set_learning_rate(float lr) noexcept { optimizer_.set_learning_rate(lr); }
  float learning_rate() const noexcept { return optimizer_.learning_rate(); }

  /// Staleness-weighted mixing (sim::AsyncMode::kWeighted): a contribution
  /// tagged s rounds before the aggregating round mixes with weight
  /// w_ij * lambda^s. The default lambda of 1.0 makes every scaling helper
  /// an exact no-op (multiplying by 1.0 is exact in IEEE arithmetic), so
  /// the synchronous and barrier paths stay bit-identical.
  void set_staleness_decay(double lambda) noexcept { staleness_decay_ = lambda; }
  double staleness_decay() const noexcept { return staleness_decay_; }

  /// Marks this node as a byzantine attacker: from now on share() corrupts
  /// every value span it puts on the wire (ByzantineMode semantics). Never
  /// called on honest nodes, whose share() path stays bit-identical to the
  /// pre-adversarial engine.
  void set_byzantine(ByzantineMode mode, double scale) noexcept {
    byzantine_ = true;
    byzantine_mode_ = mode;
    byzantine_scale_ = scale;
  }
  bool is_byzantine() const noexcept { return byzantine_; }

  /// Robust-aggregation countermeasure applied at this node's aggregation
  /// step. The default (kNone) routes through core::partial_average
  /// unchanged — the exact legacy path.
  void set_robust_agg(const core::RobustAggConfig& config) noexcept {
    robust_ = config;
  }

  /// Messages this node put on the wire with corrupted values (0 on honest
  /// nodes); collected into the result JSON's "byzantine" block.
  std::uint64_t corrupted_messages() const noexcept {
    return corrupted_messages_;
  }
  /// What the robust rule discarded/shrank at this node's aggregations.
  const core::RobustAggCounters& robust_counters() const noexcept {
    return robust_counters_;
  }

 protected:
  /// Mixing weight w_{rank,sender}; returns 0 for non-neighbors.
  static double weight_of(const graph::Graph& g,
                          const graph::MixingWeights& weights,
                          std::uint32_t receiver, std::uint32_t sender);

  /// lambda^(round - msg_round) under the configured decay; exactly 1.0
  /// when no decay is set or the message is current/future-tagged.
  double staleness_scale(std::uint32_t msg_round,
                         std::uint32_t round) const noexcept;

  /// The mixing weight of `msg` at aggregation time: weight_of() scaled by
  /// staleness_scale(). With the default decay this IS weight_of() — same
  /// double, no extra arithmetic.
  double contribution_weight(const graph::Graph& g,
                             const graph::MixingWeights& weights,
                             const net::Message& msg,
                             std::uint32_t round) const;

  /// Fresh counter-based random stream for this node's draws in `round`.
  /// A pure function of (experiment seed, rank, round, salt): the k-th draw
  /// never depends on earlier rounds or other nodes, so threaded execution
  /// is bit-identical to sequential (see docs/DESIGN.md).
  core::CounterRng round_rng(std::uint32_t round,
                             std::uint64_t salt = 0) const noexcept {
    return core::CounterRng(config_.seed, rank_, round, salt);
  }

  /// Stream tag of the byzantine corruption draws (round_rng salt base);
  /// algorithms needing a second adversarial stream in the same round (e.g.
  /// CHOCO's re-quantization of the corrupted diff) offset from it.
  static constexpr std::uint64_t kByzantineStream = 0xBAD1;

  /// Applies the configured corruption to a wire-bound value span, in place.
  /// Only ever called under is_byzantine(); `salt` disambiguates multiple
  /// corrupted spans in one round (per-edge payloads, per-block arrays).
  void corrupt_wire_values(std::span<float> values, std::uint32_t round,
                           std::uint64_t salt = 0);

  /// Books `messages` corrupted sends (called by share() next to the actual
  /// network.send fan-out).
  void note_corrupted_sends(std::size_t messages) noexcept {
    corrupted_messages_ += static_cast<std::uint64_t>(messages);
  }

  /// Routes Algorithm 1's partial averaging through the configured robust
  /// rule. kNone picks the exact overload the pre-adversarial code called
  /// (scaled only when a scale differs from 1.0), so golden runs stay
  /// byte-identical.
  void robust_average(std::span<float> own, double self_weight,
                      std::span<const core::WeightedContribution> contributions,
                      std::span<const double> contribution_scales, bool scaled,
                      core::Arena& arena);

  const core::RobustAggConfig& robust_agg() const noexcept { return robust_; }
  core::RobustAggCounters& robust_counters_mutable() noexcept {
    return robust_counters_;
  }

 private:
  std::uint32_t rank_;
  std::unique_ptr<nn::SupervisedModel> model_;
  data::Sampler sampler_;
  TrainConfig config_;
  nn::Sgd optimizer_;
  double staleness_decay_ = 1.0;  ///< 1.0 = no decay (exact no-op scaling)
  bool byzantine_ = false;
  ByzantineMode byzantine_mode_ = ByzantineMode::kSignFlip;
  double byzantine_scale_ = 1.0;
  core::RobustAggConfig robust_;
  core::RobustAggCounters robust_counters_;
  std::uint64_t corrupted_messages_ = 0;
};

}  // namespace jwins::algo

// Decentralized-learning node framework — the base class every algorithm
// in src/algo/ derives from, and the interface the sim/ engine drives.
//
// Every algorithm follows the paper's train-communicate-aggregate round
// structure (§II-A): the engine calls local_train() on every node (tau SGD
// steps on the node's partition), then share() (messages go out through the
// simulated net::Network), then aggregate() (mailboxes are drained and
// models merged under the topology's mixing weights). Algorithms differ
// only in what share()/aggregate() put on the wire — full_sharing sends the
// dense model, random_sampling a seeded index sample, choco an
// error-feedback-compressed difference, and jwins_node the wavelet-ranked
// randomized-cut-off payload of Algorithm 1. JWINS' claim is precisely that
// it is independent of the rest of the DL stack: DlNode gives every
// algorithm the identical model/optimizer/data substrate so byte and
// accuracy comparisons isolate the communication policy.
#pragma once

#include <cstdint>
#include <memory>

#include "core/rng.hpp"
#include "core/scratch.hpp"
#include "data/dataset.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "nn/model.hpp"
#include "nn/sgd.hpp"

namespace jwins::algo {

struct TrainConfig {
  std::size_t local_steps = 1;  ///< tau in the paper
  nn::Sgd::Options sgd;

  /// Experiment seed; every per-node random stream (round_rng) derives from
  /// (seed, rank, round) so runs are reproducible at any thread count.
  std::uint64_t seed = 1;
};

class DlNode {
 public:
  DlNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
         data::Sampler sampler, TrainConfig config);
  virtual ~DlNode() = default;

  DlNode(const DlNode&) = delete;
  DlNode& operator=(const DlNode&) = delete;

  std::uint32_t rank() const noexcept { return rank_; }

  /// Runs tau mini-batch SGD steps on local data. Returns mean train loss.
  float local_train();

  /// Sends this round's messages to the neighbors in `g`. `scratch` is this
  /// call's workspace (reset by the implementation on entry): the engine
  /// hands each execution lane its own RoundScratch, so steady-state rounds
  /// allocate nothing. Anything that must survive into aggregate() lives in
  /// node members, never in scratch.
  virtual void share(net::Network& network, const graph::Graph& g,
                     const graph::MixingWeights& weights, std::uint32_t round,
                     core::RoundScratch& scratch) = 0;

  /// Drains the mailbox and merges neighbor contributions into the model.
  /// Same scratch contract as share().
  virtual void aggregate(net::Network& network, const graph::Graph& g,
                         const graph::MixingWeights& weights,
                         std::uint32_t round,
                         core::RoundScratch& scratch) = 0;

  nn::SupervisedModel& model() noexcept { return *model_; }

  /// Flat view of the current model parameters.
  std::vector<float> flat_params();
  /// Reuse variants: copy into caller storage (resized / sized to
  /// param_count()) instead of allocating.
  void flat_params_into(std::vector<float>& out);
  void flat_params_into(std::span<float> out);
  void set_flat_params(std::span<const float> flat);
  std::size_t param_count();

  /// Adjusts the local optimizer's step size (for learning-rate schedules).
  void set_learning_rate(float lr) noexcept { optimizer_.set_learning_rate(lr); }
  float learning_rate() const noexcept { return optimizer_.learning_rate(); }

  /// Staleness-weighted mixing (sim::AsyncMode::kWeighted): a contribution
  /// tagged s rounds before the aggregating round mixes with weight
  /// w_ij * lambda^s. The default lambda of 1.0 makes every scaling helper
  /// an exact no-op (multiplying by 1.0 is exact in IEEE arithmetic), so
  /// the synchronous and barrier paths stay bit-identical.
  void set_staleness_decay(double lambda) noexcept { staleness_decay_ = lambda; }
  double staleness_decay() const noexcept { return staleness_decay_; }

 protected:
  /// Mixing weight w_{rank,sender}; returns 0 for non-neighbors.
  static double weight_of(const graph::Graph& g,
                          const graph::MixingWeights& weights,
                          std::uint32_t receiver, std::uint32_t sender);

  /// lambda^(round - msg_round) under the configured decay; exactly 1.0
  /// when no decay is set or the message is current/future-tagged.
  double staleness_scale(std::uint32_t msg_round,
                         std::uint32_t round) const noexcept;

  /// The mixing weight of `msg` at aggregation time: weight_of() scaled by
  /// staleness_scale(). With the default decay this IS weight_of() — same
  /// double, no extra arithmetic.
  double contribution_weight(const graph::Graph& g,
                             const graph::MixingWeights& weights,
                             const net::Message& msg,
                             std::uint32_t round) const;

  /// Fresh counter-based random stream for this node's draws in `round`.
  /// A pure function of (experiment seed, rank, round, salt): the k-th draw
  /// never depends on earlier rounds or other nodes, so threaded execution
  /// is bit-identical to sequential (see docs/DESIGN.md).
  core::CounterRng round_rng(std::uint32_t round,
                             std::uint64_t salt = 0) const noexcept {
    return core::CounterRng(config_.seed, rank_, round, salt);
  }

 private:
  std::uint32_t rank_;
  std::unique_ptr<nn::SupervisedModel> model_;
  data::Sampler sampler_;
  TrainConfig config_;
  nn::Sgd optimizer_;
  double staleness_decay_ = 1.0;  ///< 1.0 = no decay (exact no-op scaling)
};

}  // namespace jwins::algo

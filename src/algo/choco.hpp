// Memory-efficient CHOCO-SGD (Koloskova, Stich & Jaggi, ICML 2019) with
// TopK compression — the paper's state-of-the-art comparison baseline.
//
// Each node keeps only its own public copy x̂_i and the weighted neighbor
// aggregate s_i = Σ_j w_ij x̂_j (including self), updating both
// incrementally from the exchanged compressed differences q:
//   q_i = TopK(x_i - x̂_i);  broadcast q_i
//   x̂_i += q_i;  s_i += w_ii q_i + Σ_{j∈N} w_ij q_j
//   x_i += γ (s_i - x̂_i)
// The error-feedback state assumes a *static* topology; the paper points out
// (Fig. 7) that CHOCO breaks down when neighbors change every round.
#pragma once

#include "algo/node.hpp"
#include "core/sparse_payload.hpp"

namespace jwins::algo {

class ChocoNode final : public DlNode {
 public:
  /// CHOCO-SGD is defined for arbitrary compressors Q; the paper evaluates
  /// TopK ("it worked better than random sampling"), and QSGD-style
  /// stochastic quantization is provided as the other standard choice.
  enum class Compressor { kTopK, kQsgd };

  struct Options {
    double gamma = 0.6;      ///< consensus step size (the sensitive knob)
    Compressor compressor = Compressor::kTopK;
    double fraction = 0.2;   ///< TopK fraction of parameters per round
    std::uint32_t qsgd_levels = 15;  ///< quantization levels for kQsgd
    core::IndexEncoding index_encoding = core::IndexEncoding::kEliasGamma;
    core::ValueEncoding value_encoding = core::ValueEncoding::kXorCodec;
  };

  ChocoNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
            data::Sampler sampler, TrainConfig config, Options options);

  void share(net::Network& network, const graph::Graph& g,
             const graph::MixingWeights& weights, std::uint32_t round,
             core::RoundScratch& scratch) override;
  void aggregate(net::Network& network, const graph::Graph& g,
                 const graph::MixingWeights& weights, std::uint32_t round,
                 core::RoundScratch& scratch) override;

 private:
  Options options_;
  std::vector<float> x_hat_;  ///< public copy of own model
  std::vector<float> s_;      ///< Σ_j w_ij x̂_j, maintained incrementally
  // Own compressed difference of the current round, applied in aggregate().
  std::vector<std::uint32_t> own_indices_;
  std::vector<float> own_values_;
  bool initialized_ = false;
};

}  // namespace jwins::algo

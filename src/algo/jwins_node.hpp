// JWINS (paper Algorithm 1): wavelet-domain ranking + accumulation,
// randomized cut-off TopK selection, Elias-gamma metadata, and averaging in
// the wavelet domain before inverting back to parameters.
//
// The three ablation arms of Figure 8 are configuration, not code:
//  * without wavelet      -> Options::ranker.use_wavelet = false
//  * without accumulation -> Options::ranker.use_accumulation = false
//  * without random cut-off -> Options::cutoff = RandomizedCutoff::fixed(E[alpha])
#pragma once

#include "algo/node.hpp"
#include "core/cutoff.hpp"
#include "core/ranker.hpp"
#include "core/sparse_payload.hpp"

namespace jwins::algo {

class JwinsNode final : public DlNode {
 public:
  struct Options {
    core::WaveletRanker::Options ranker;
    core::RandomizedCutoff cutoff = core::RandomizedCutoff::paper_default();
    core::IndexEncoding index_encoding = core::IndexEncoding::kEliasGamma;
    core::ValueEncoding value_encoding = core::ValueEncoding::kXorCodec;
  };

  JwinsNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
            data::Sampler sampler, TrainConfig config, Options options);

  void share(net::Network& network, const graph::Graph& g,
             const graph::MixingWeights& weights, std::uint32_t round,
             core::RoundScratch& scratch) override;
  void aggregate(net::Network& network, const graph::Graph& g,
                 const graph::MixingWeights& weights, std::uint32_t round,
                 core::RoundScratch& scratch) override;

  /// Sharing fraction chosen in the most recent round (for Figure 3).
  double last_alpha() const noexcept { return last_alpha_; }

  /// How many coefficients this node has shared from each wavelet band
  /// (band 0 = coarsest approximation) across all sparse rounds so far —
  /// a diagnostic of where the ranking concentrates.
  const std::vector<std::uint64_t>& band_share_counts() const noexcept {
    return band_share_counts_;
  }

 private:
  Options options_;
  core::WaveletRanker ranker_;
  // Round state. x0_ is x^{t,0} (start-of-round model); after share() we also
  // hold x^{t,tau} and our own wavelet coefficients.
  std::vector<float> x0_;
  std::vector<float> x_tau_;
  std::vector<float> own_coeffs_;
  std::vector<std::uint32_t> sent_indices_;
  bool sent_dense_ = false;
  double last_alpha_ = 0.0;
  std::vector<std::uint64_t> band_share_counts_;
};

}  // namespace jwins::algo

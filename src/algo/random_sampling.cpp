#include "algo/random_sampling.hpp"

#include <algorithm>
#include <stdexcept>

#include "compress/topk.hpp"
#include "core/averaging.hpp"

namespace jwins::algo {

RandomSamplingNode::RandomSamplingNode(
    std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
    data::Sampler sampler, TrainConfig config, double fraction,
    std::uint64_t seed_base)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      fraction_(fraction),
      seed_base_(seed_base) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("RandomSamplingNode: fraction must be in (0, 1]");
  }
}

void RandomSamplingNode::share(net::Network& network, const graph::Graph& g,
                               const graph::MixingWeights& /*weights*/,
                               std::uint32_t round,
                               core::RoundScratch& scratch) {
  scratch.reset();
  const std::size_t n = param_count();
  const std::span<float> x = scratch.arena.alloc<float>(n);
  flat_params_into(x);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction_ * static_cast<double>(n) + 0.5));
  // Per-(node, round) subset seed, derived like every other stream
  // (core::derive_seed, no offset collisions); the receiver reconstructs the
  // subset from the 8 bytes in the message, not from this derivation.
  const std::uint64_t seed = core::derive_seed(seed_base_, rank(), round);
  compress::random_indices_into(n, k, seed, indices_, scratch.arena);
  const std::span<float> values = scratch.arena.alloc<float>(indices_.size());
  compress::gather_into(x, indices_, values);
  // Wire-only corruption: the gathered values are arena staging, the model
  // itself stays honest.
  if (is_byzantine()) {
    corrupt_wire_values(values, round);
    note_corrupted_sends(g.neighbors(rank()).size());
  }
  core::PayloadView payload;
  payload.vector_length = static_cast<std::uint32_t>(n);
  payload.indices = indices_;
  payload.values = values;
  core::PayloadOptions options;
  options.index_encoding = core::IndexEncoding::kSeed;
  options.seed = seed;
  const net::Message msg = core::make_message(
      rank(), round, payload, options, network.pool(), scratch.bits);
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void RandomSamplingNode::aggregate(net::Network& network, const graph::Graph& g,
                                   const graph::MixingWeights& weights,
                                   std::uint32_t round,
                                   core::RoundScratch& scratch) {
  scratch.reset();
  network.drain_into(rank(), scratch.inbox);
  const std::vector<net::Message>& inbox = scratch.inbox;
  for (const net::Message& msg : inbox) {
    core::decode_payload_into(msg.body, scratch.payloads.next(), scratch.arena);
  }
  // Pool references are stable once all payloads are decoded. Staleness
  // scales are all exactly 1.0 outside weighted async mode, in which case
  // the unscaled (bit-identical legacy) overload runs.
  bool scaled = false;
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    scratch.contributions.push_back(
        {weight_of(g, weights, rank(), inbox[i].sender), &scratch.payloads[i]});
    const double scale = staleness_scale(inbox[i].round, round);
    scratch.contribution_scales.push_back(scale);
    scaled = scaled || scale != 1.0;
  }
  const std::span<float> x = scratch.arena.alloc<float>(param_count());
  flat_params_into(x);
  robust_average(x, weights.self_weight[rank()], scratch.contributions,
                 scratch.contribution_scales, scaled, scratch.arena);
  set_flat_params(x);
}

}  // namespace jwins::algo

#include "algo/random_sampling.hpp"

#include <algorithm>
#include <stdexcept>

#include "compress/topk.hpp"
#include "core/averaging.hpp"

namespace jwins::algo {

RandomSamplingNode::RandomSamplingNode(
    std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
    data::Sampler sampler, TrainConfig config, double fraction,
    std::uint64_t seed_base)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      fraction_(fraction),
      seed_base_(seed_base) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("RandomSamplingNode: fraction must be in (0, 1]");
  }
}

void RandomSamplingNode::share(net::Network& network, const graph::Graph& g,
                               const graph::MixingWeights& /*weights*/,
                               std::uint32_t round) {
  const std::vector<float> x = flat_params();
  const std::size_t n = x.size();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction_ * static_cast<double>(n) + 0.5));
  // Per-(node, round) subset seed, derived like every other stream
  // (core::derive_seed, no offset collisions); the receiver reconstructs the
  // subset from the 8 bytes in the message, not from this derivation.
  const std::uint64_t seed = core::derive_seed(seed_base_, rank(), round);
  core::SparsePayload payload;
  payload.vector_length = static_cast<std::uint32_t>(n);
  payload.indices = compress::random_indices(n, k, seed);
  payload.values = compress::gather(x, payload.indices);
  core::PayloadOptions options;
  options.index_encoding = core::IndexEncoding::kSeed;
  options.seed = seed;
  const net::Message msg = core::make_message(rank(), round, payload, options);
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void RandomSamplingNode::aggregate(net::Network& network, const graph::Graph& g,
                                   const graph::MixingWeights& weights,
                                   std::uint32_t round) {
  (void)round;
  const std::vector<net::Message> inbox = network.drain(rank());
  std::vector<core::SparsePayload> payloads;
  payloads.reserve(inbox.size());
  std::vector<core::WeightedContribution> contributions;
  contributions.reserve(inbox.size());
  for (const net::Message& msg : inbox) {
    payloads.push_back(core::decode_payload(msg.body));
    contributions.push_back(
        {weight_of(g, weights, rank(), msg.sender), &payloads.back()});
  }
  std::vector<float> x = flat_params();
  core::partial_average(x, weights.self_weight[rank()], contributions);
  set_flat_params(x);
}

}  // namespace jwins::algo

#include "algo/power_gossip.hpp"

#include <cmath>
#include <stdexcept>

#include "net/serializer.hpp"

namespace jwins::algo {

PowerGossipNode::PowerGossipNode(std::uint32_t rank,
                                 std::unique_ptr<nn::SupervisedModel> model,
                                 data::Sampler sampler, TrainConfig config,
                                 Options options)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      options_(options) {
  // One block per parameter tensor: matrices keep their leading axis as
  // rows; vectors (biases, norms) become a single row, for which rank-1 is
  // exact.
  std::size_t offset = 0;
  for (const tensor::Tensor* p : this->model().parameters()) {
    Block block;
    block.offset = offset;
    if (p->rank() >= 2) {
      block.rows = p->dim(0);
      block.cols = p->size() / p->dim(0);
    } else {
      block.rows = 1;
      block.cols = p->size();
    }
    blocks_.push_back(block);
    offset += p->size();
  }
}

std::size_t PowerGossipNode::floats_per_edge_iteration() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.rows + b.cols;
  return total;
}

PowerGossipNode::EdgeState& PowerGossipNode::edge(std::size_t neighbor) {
  auto it = edges_.find(neighbor);
  if (it != edges_.end()) return it->second;
  EdgeState state;
  // Both endpoints must start from the *same* iteration vectors: seed the
  // generator from the canonical (lo, hi) edge id.
  const std::size_t lo = std::min<std::size_t>(rank(), neighbor);
  const std::size_t hi = std::max<std::size_t>(rank(), neighbor);
  std::mt19937_64 rng(options_.seed ^ (lo * 0x9E3779B97F4A7C15ull) ^
                      (hi * 0xBF58476D1CE4E5B9ull));
  std::normal_distribution<float> dist(0.0f, 1.0f);
  state.block_state.resize(blocks_.size());
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    BlockState& bs = state.block_state[b];
    bs.v.resize(blocks_[b].cols);
    for (float& x : bs.v) x = dist(rng);
    bs.u.assign(blocks_[b].rows, 0.0f);
  }
  return edges_.emplace(neighbor, std::move(state)).first->second;
}

void PowerGossipNode::share(net::Network& network, const graph::Graph& g,
                            const graph::MixingWeights& /*weights*/,
                            std::uint32_t round, core::RoundScratch& scratch) {
  scratch.reset();
  const std::span<float> x = scratch.arena.alloc<float>(param_count());
  flat_params_into(x);
  const bool phase_a = (round % 2 == 0);
  // Wire-only corruption: own_p/own_q members must stay honest (the node
  // compares them against the neighbor's reply in aggregate()), so a
  // byzantine node writes a corrupted arena copy per block. Payloads differ
  // per edge, so the salt folds in (neighbor, block) to decorrelate the
  // random-mode garbage across edges.
  const auto wire_span = [&](const std::vector<float>& honest, std::size_t j,
                             std::size_t b) -> std::span<const float> {
    if (!is_byzantine()) return honest;
    const std::span<float> wire = scratch.arena.alloc<float>(honest.size());
    std::copy(honest.begin(), honest.end(), wire.begin());
    corrupt_wire_values(wire, round, (j + 1) * 256 + b);
    return wire;
  };
  for (std::size_t j : g.neighbors(rank())) {
    EdgeState& state = edge(j);
    // The per-edge payload differs, so each neighbor gets its own pooled
    // buffer (no fan-out sharing here, unlike the broadcast algorithms).
    net::ByteWriter writer(network.pool().acquire());
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const Block& block = blocks_[b];
      BlockState& bs = state.block_state[b];
      const float* m = x.data() + block.offset;
      if (phase_a) {
        // p = M v.
        bs.own_p.assign(block.rows, 0.0f);
        for (std::size_t r = 0; r < block.rows; ++r) {
          double acc = 0.0;
          for (std::size_t c = 0; c < block.cols; ++c) {
            acc += static_cast<double>(m[r * block.cols + c]) * bs.v[c];
          }
          bs.own_p[r] = static_cast<float>(acc);
        }
        writer.write_f32_array(wire_span(bs.own_p, j, b));
      } else {
        // q = M^T u.
        bs.own_q.assign(block.cols, 0.0f);
        for (std::size_t r = 0; r < block.rows; ++r) {
          const float ur = bs.u[r];
          if (ur == 0.0f) continue;
          for (std::size_t c = 0; c < block.cols; ++c) {
            bs.own_q[c] += ur * m[r * block.cols + c];
          }
        }
        writer.write_f32_array(wire_span(bs.own_q, j, b));
      }
    }
    net::Message msg;
    msg.sender = rank();
    msg.round = round;
    msg.body = network.pool().adopt(std::move(writer).take());
    msg.metadata_bytes = 4 * blocks_.size();  // array length prefixes
    network.send(static_cast<std::uint32_t>(j), msg);
    if (is_byzantine()) note_corrupted_sends(1);
  }
}

void PowerGossipNode::aggregate(net::Network& network, const graph::Graph& g,
                                const graph::MixingWeights& weights,
                                std::uint32_t round,
                                core::RoundScratch& scratch) {
  scratch.reset();
  const bool phase_a = (round % 2 == 0);
  network.drain_into(rank(), scratch.inbox);
  const std::vector<net::Message>& inbox = scratch.inbox;
  const std::span<float> x = scratch.arena.alloc<float>(param_count());
  flat_params_into(x);
  bool updated = false;
  for (const net::Message& msg : inbox) {
    EdgeState& state = edge(msg.sender);
    const bool lower = rank() < msg.sender;
    net::ByteReader reader(msg.body);
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const Block& block = blocks_[b];
      BlockState& bs = state.block_state[b];
      reader.read_f32_array_into(scratch.floats);
      const std::vector<float>& theirs = scratch.floats;
      if (phase_a) {
        if (theirs.size() != block.rows || bs.own_p.size() != block.rows) continue;
        // Both endpoints derive the same u by orienting the difference from
        // the lower-ranked node to the higher-ranked one.
        const std::span<float> diff = scratch.arena.alloc<float>(block.rows);
        double norm_sq = 0.0;
        for (std::size_t r = 0; r < block.rows; ++r) {
          diff[r] = lower ? bs.own_p[r] - theirs[r] : theirs[r] - bs.own_p[r];
          norm_sq += static_cast<double>(diff[r]) * diff[r];
        }
        const double norm = std::sqrt(norm_sq);
        if (norm < 1e-12) {
          bs.u.assign(block.rows, 0.0f);
        } else {
          for (std::size_t r = 0; r < block.rows; ++r) {
            diff[r] = static_cast<float>(diff[r] / norm);
          }
          bs.u.assign(diff.begin(), diff.end());
        }
      } else {
        if (theirs.size() != block.cols || bs.own_q.size() != block.cols) continue;
        // dq = q_lo - q_hi; the rank-1 estimate of (M_lo - M_hi) is u dq^T.
        const std::span<float> dq = scratch.arena.alloc<float>(block.cols);
        for (std::size_t c = 0; c < block.cols; ++c) {
          dq[c] = lower ? bs.own_q[c] - theirs[c] : theirs[c] - bs.own_q[c];
        }
        // norm_clip robust rule: dq is the only magnitude a neighbor
        // controls (phase A's u is normalized away), so clipping ||dq||
        // bounds a byzantine neighbor's per-step influence. The other
        // order-statistic rules are undefined for per-edge rank-1 payloads
        // and rejected at config validation.
        if (robust_agg().kind == core::RobustAggKind::kNormClip) {
          double clip_sq = 0.0;
          for (const float v : dq) clip_sq += static_cast<double>(v) * v;
          const double dq_norm = std::sqrt(clip_sq);
          if (dq_norm > robust_agg().clip_norm) {
            const float f =
                static_cast<float>(robust_agg().clip_norm / dq_norm);
            for (float& v : dq) v *= f;
            ++robust_counters_mutable().clipped_contributions;
          }
        }
        // Gossip step, scaled by the Metropolis-Hastings weight as in the
        // original (x_i += gamma w_ij (x_j - x_i) along the estimated
        // direction): simultaneous updates from several neighbors then stay
        // a stable convex-combination-like step. w_ij is symmetric, so the
        // pair's mean is preserved. Under weighted async mode the weight
        // additionally carries the λ^staleness age decay (weight_of()
        // exactly, outside it).
        const double w_ij = contribution_weight(g, weights, msg, round);
        const float sign = lower ? -1.0f : 1.0f;
        const float scale =
            sign * static_cast<float>(options_.gamma * w_ij);
        float* m = x.data() + block.offset;
        for (std::size_t r = 0; r < block.rows; ++r) {
          const float ur = bs.u[r];
          if (ur == 0.0f) continue;
          for (std::size_t c = 0; c < block.cols; ++c) {
            m[r * block.cols + c] += scale * ur * dq[c];
          }
        }
        // Warm start the next power iteration from dq (normalized).
        double norm_sq = 0.0;
        for (float v : dq) norm_sq += static_cast<double>(v) * v;
        const double norm = std::sqrt(norm_sq);
        if (norm > 1e-12) {
          for (float& v : dq) v = static_cast<float>(v / norm);
          bs.v.assign(dq.begin(), dq.end());
        }
        updated = true;
      }
    }
  }
  if (updated) set_flat_params(x);
}

}  // namespace jwins::algo

// Full-sharing D-PSGD baseline: every round the entire model is exchanged
// with all neighbors and averaged with Metropolis-Hastings weights (Lian et
// al. 2017). This is the paper's accuracy upper-bound baseline.
#pragma once

#include "algo/node.hpp"
#include "core/sparse_payload.hpp"

namespace jwins::algo {

class FullSharingNode final : public DlNode {
 public:
  FullSharingNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
                  data::Sampler sampler, TrainConfig config,
                  core::ValueEncoding value_encoding = core::ValueEncoding::kXorCodec);

  void share(net::Network& network, const graph::Graph& g,
             const graph::MixingWeights& weights, std::uint32_t round,
             core::RoundScratch& scratch) override;
  void aggregate(net::Network& network, const graph::Graph& g,
                 const graph::MixingWeights& weights, std::uint32_t round,
                 core::RoundScratch& scratch) override;

 private:
  core::ValueEncoding value_encoding_;
};

}  // namespace jwins::algo

#include "algo/choco.hpp"

#include <algorithm>
#include <stdexcept>

#include "compress/quantize.hpp"
#include "compress/topk.hpp"

namespace jwins::algo {

ChocoNode::ChocoNode(std::uint32_t rank,
                     std::unique_ptr<nn::SupervisedModel> model,
                     data::Sampler sampler, TrainConfig config, Options options)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      options_(options) {
  if (options_.fraction <= 0.0 || options_.fraction > 1.0) {
    throw std::invalid_argument("ChocoNode: fraction must be in (0, 1]");
  }
  // x̂ and s start at zero; the first rounds "fill in" the public copies,
  // matching the CHOCO initialization x̂_i^0 = 0.
  x_hat_.assign(param_count(), 0.0f);
  s_.assign(param_count(), 0.0f);
}

void ChocoNode::share(net::Network& network, const graph::Graph& g,
                      const graph::MixingWeights& /*weights*/,
                      std::uint32_t round) {
  const std::vector<float> x = flat_params();
  const std::size_t n = x.size();
  std::vector<float> diff(n);
  for (std::size_t i = 0; i < n; ++i) diff[i] = x[i] - x_hat_[i];

  net::Message msg;
  if (options_.compressor == Compressor::kQsgd) {
    // Dense stochastic quantization: the node must apply the *same* lossy
    // values it broadcast, so own_values_ holds the dequantized vector.
    core::CounterRng rng = round_rng(round);
    const compress::QuantizedVector q =
        compress::qsgd_quantize(diff, options_.qsgd_levels, rng);
    own_indices_.clear();  // dense
    own_values_ = compress::qsgd_dequantize(q);
    msg.sender = rank();
    msg.round = round;
    msg.body = compress::qsgd_serialize(q);
    msg.metadata_bytes = 12;  // norm + levels + count header
  } else {
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.fraction * static_cast<double>(n) + 0.5));
    own_indices_ = compress::topk_indices(diff, k);
    own_values_ = compress::gather(diff, own_indices_);

    core::SparsePayload payload;
    payload.vector_length = static_cast<std::uint32_t>(n);
    payload.indices = own_indices_;
    payload.values = own_values_;
    core::PayloadOptions msg_options;
    msg_options.index_encoding = options_.index_encoding;
    msg_options.value_encoding = options_.value_encoding;
    msg = core::make_message(rank(), round, payload, msg_options);
  }
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void ChocoNode::aggregate(net::Network& network, const graph::Graph& g,
                          const graph::MixingWeights& weights,
                          std::uint32_t round) {
  (void)round;
  const std::vector<net::Message> inbox = network.drain(rank());
  const double w_self = weights.self_weight[rank()];
  // x̂_i += q_i and s += w_ii * q_i (own contribution).
  if (own_indices_.empty() && !own_values_.empty()) {  // dense (qsgd)
    for (std::size_t i = 0; i < own_values_.size(); ++i) {
      x_hat_[i] += own_values_[i];
      s_[i] += static_cast<float>(w_self * own_values_[i]);
    }
  } else {
    for (std::size_t i = 0; i < own_indices_.size(); ++i) {
      const std::uint32_t idx = own_indices_[i];
      x_hat_[idx] += own_values_[i];
      s_[idx] += static_cast<float>(w_self * own_values_[i]);
    }
  }
  // s += Σ_j w_ij q_j (neighbor contributions).
  for (const net::Message& msg : inbox) {
    const double w = weight_of(g, weights, rank(), msg.sender);
    if (options_.compressor == Compressor::kQsgd) {
      const auto q = compress::qsgd_deserialize(msg.body);
      const std::vector<float> values = compress::qsgd_dequantize(q);
      if (values.size() != s_.size()) {
        throw std::out_of_range("ChocoNode: quantized vector length mismatch");
      }
      for (std::size_t i = 0; i < values.size(); ++i) {
        s_[i] += static_cast<float>(w * values[i]);
      }
    } else {
      const core::SparsePayload payload = core::decode_payload(msg.body);
      for (std::size_t i = 0; i < payload.indices.size(); ++i) {
        const std::uint32_t idx = payload.indices[i];
        if (idx >= s_.size()) {
          throw std::out_of_range("ChocoNode: received index out of range");
        }
        s_[idx] += static_cast<float>(w * payload.values[i]);
      }
    }
  }
  // Consensus step: x += γ (s - x̂) where s - x̂ = Σ_j w_ij (x̂_j - x̂_i).
  std::vector<float> x = flat_params();
  const float gamma = static_cast<float>(options_.gamma);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += gamma * (s_[i] - x_hat_[i]);
  }
  set_flat_params(x);
}

}  // namespace jwins::algo

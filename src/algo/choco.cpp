#include "algo/choco.hpp"

#include <algorithm>
#include <stdexcept>

#include "compress/quantize.hpp"
#include "compress/topk.hpp"
#include "net/serializer.hpp"

namespace jwins::algo {

ChocoNode::ChocoNode(std::uint32_t rank,
                     std::unique_ptr<nn::SupervisedModel> model,
                     data::Sampler sampler, TrainConfig config, Options options)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      options_(options) {
  if (options_.fraction <= 0.0 || options_.fraction > 1.0) {
    throw std::invalid_argument("ChocoNode: fraction must be in (0, 1]");
  }
  // x̂ and s start at zero; the first rounds "fill in" the public copies,
  // matching the CHOCO initialization x̂_i^0 = 0.
  x_hat_.assign(param_count(), 0.0f);
  s_.assign(param_count(), 0.0f);
}

void ChocoNode::share(net::Network& network, const graph::Graph& g,
                      const graph::MixingWeights& /*weights*/,
                      std::uint32_t round, core::RoundScratch& scratch) {
  scratch.reset();
  const std::size_t n = param_count();
  const std::span<float> x = scratch.arena.alloc<float>(n);
  flat_params_into(x);
  const std::span<float> diff = scratch.arena.alloc<float>(n);
  for (std::size_t i = 0; i < n; ++i) diff[i] = x[i] - x_hat_[i];

  net::Message msg;
  if (options_.compressor == Compressor::kQsgd) {
    // Dense stochastic quantization: the node must apply the *same* lossy
    // values it broadcast, so own_values_ holds the dequantized vector.
    core::CounterRng rng = round_rng(round);
    compress::qsgd_quantize_into(diff, options_.qsgd_levels, rng,
                                 scratch.quantized);
    own_indices_.clear();  // dense
    compress::qsgd_dequantize_into(scratch.quantized, own_values_);
    if (is_byzantine()) {
      // Wire-only corruption: own_values_ keeps the honest dequantized
      // vector (the node self-applies it in aggregate()), while the wire
      // carries a corrupted diff re-quantized under a salted stream.
      const std::span<float> bad = scratch.arena.alloc<float>(n);
      std::copy(diff.begin(), diff.end(), bad.begin());
      corrupt_wire_values(bad, round);
      core::CounterRng bad_rng = round_rng(round, kByzantineStream + 1);
      compress::qsgd_quantize_into(bad, options_.qsgd_levels, bad_rng,
                                   scratch.quantized);
    }
    net::ByteWriter writer(network.pool().acquire());
    compress::qsgd_serialize_into(scratch.quantized, writer);
    msg.sender = rank();
    msg.round = round;
    msg.body = network.pool().adopt(std::move(writer).take());
    msg.metadata_bytes = 12;  // norm + levels + count header
  } else {
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.fraction * static_cast<double>(n) + 0.5));
    compress::topk_indices_into(diff, k, own_indices_);
    compress::gather_into(diff, own_indices_, own_values_);

    core::PayloadView payload;
    payload.vector_length = static_cast<std::uint32_t>(n);
    payload.indices = own_indices_;
    if (is_byzantine()) {
      // own_values_ is self-applied in aggregate(), so the wire gets a
      // corrupted arena copy and the attacker's own state stays honest.
      const std::span<float> wire =
          scratch.arena.alloc<float>(own_values_.size());
      std::copy(own_values_.begin(), own_values_.end(), wire.begin());
      corrupt_wire_values(wire, round);
      payload.values = wire;
    } else {
      payload.values = own_values_;
    }
    core::PayloadOptions msg_options;
    msg_options.index_encoding = options_.index_encoding;
    msg_options.value_encoding = options_.value_encoding;
    msg = core::make_message(rank(), round, payload, msg_options,
                             network.pool(), scratch.bits);
  }
  if (is_byzantine()) note_corrupted_sends(g.neighbors(rank()).size());
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void ChocoNode::aggregate(net::Network& network, const graph::Graph& g,
                          const graph::MixingWeights& weights,
                          std::uint32_t round, core::RoundScratch& scratch) {
  scratch.reset();
  network.drain_into(rank(), scratch.inbox);
  const std::vector<net::Message>& inbox = scratch.inbox;
  const double w_self = weights.self_weight[rank()];
  // x̂_i += q_i and s += w_ii * q_i (own contribution).
  if (own_indices_.empty() && !own_values_.empty()) {  // dense (qsgd)
    for (std::size_t i = 0; i < own_values_.size(); ++i) {
      x_hat_[i] += own_values_[i];
      s_[i] += static_cast<float>(w_self * own_values_[i]);
    }
  } else {
    for (std::size_t i = 0; i < own_indices_.size(); ++i) {
      const std::uint32_t idx = own_indices_[i];
      x_hat_[idx] += own_values_[i];
      s_[idx] += static_cast<float>(w_self * own_values_[i]);
    }
  }
  // s += Σ_j w_ij q_j (neighbor contributions; under weighted async mode
  // the mixing weight additionally carries the λ^staleness age decay —
  // exactly weight_of() outside it).
  if (robust_agg().kind == core::RobustAggKind::kNone) {
    for (const net::Message& msg : inbox) {
      const double w = contribution_weight(g, weights, msg, round);
      if (options_.compressor == Compressor::kQsgd) {
        // Zero-copy: the packed bitstream is read in place from the
        // refcounted body, never materialized into scratch.
        const compress::QuantizedView q = compress::qsgd_view(msg.body);
        compress::qsgd_dequantize_into(q, scratch.floats);
        if (scratch.floats.size() != s_.size()) {
          throw std::out_of_range("ChocoNode: quantized vector length mismatch");
        }
        for (std::size_t i = 0; i < scratch.floats.size(); ++i) {
          s_[i] += static_cast<float>(w * scratch.floats[i]);
        }
      } else {
        core::SparsePayload& payload = scratch.payloads.next();
        core::decode_payload_into(msg.body, payload, scratch.arena);
        for (std::size_t i = 0; i < payload.indices.size(); ++i) {
          const std::uint32_t idx = payload.indices[i];
          if (idx >= s_.size()) {
            throw std::out_of_range("ChocoNode: received index out of range");
          }
          s_[idx] += static_cast<float>(w * payload.values[i]);
        }
      }
    }
  } else {
    // Robust path: materialize every neighbor diff first (the order-
    // statistic rules need them simultaneously; pool references are stable
    // only once all payloads are decoded), then merge through the
    // configured rule. qsgd payloads dequantize into pool slots here
    // instead of the streaming scratch buffer.
    for (const net::Message& msg : inbox) {
      core::SparsePayload& payload = scratch.payloads.next();
      if (options_.compressor == Compressor::kQsgd) {
        const compress::QuantizedView q = compress::qsgd_view(msg.body);
        compress::qsgd_dequantize_into(q, payload.values);
        if (payload.values.size() != s_.size()) {
          throw std::out_of_range("ChocoNode: quantized vector length mismatch");
        }
        payload.vector_length = static_cast<std::uint32_t>(s_.size());
      } else {
        core::decode_payload_into(msg.body, payload, scratch.arena);
      }
    }
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      scratch.contributions.push_back(
          {contribution_weight(g, weights, inbox[i], round),
           &scratch.payloads[i]});
    }
    core::robust_accumulate_diffs(robust_agg(), s_, scratch.contributions,
                                  scratch.arena, &robust_counters_mutable());
  }
  // Consensus step: x += γ (s - x̂) where s - x̂ = Σ_j w_ij (x̂_j - x̂_i).
  const std::span<float> x = scratch.arena.alloc<float>(param_count());
  flat_params_into(x);
  const float gamma = static_cast<float>(options_.gamma);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += gamma * (s_[i] - x_hat_[i]);
  }
  set_flat_params(x);
}

}  // namespace jwins::algo

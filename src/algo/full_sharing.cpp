#include "algo/full_sharing.hpp"

#include "core/averaging.hpp"

namespace jwins::algo {

FullSharingNode::FullSharingNode(std::uint32_t rank,
                                 std::unique_ptr<nn::SupervisedModel> model,
                                 data::Sampler sampler, TrainConfig config,
                                 core::ValueEncoding value_encoding)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      value_encoding_(value_encoding) {}

void FullSharingNode::share(net::Network& network, const graph::Graph& g,
                            const graph::MixingWeights& /*weights*/,
                            std::uint32_t round) {
  core::SparsePayload payload;
  payload.values = flat_params();
  payload.vector_length = static_cast<std::uint32_t>(payload.values.size());
  core::PayloadOptions options;
  options.index_encoding = core::IndexEncoding::kDense;
  options.value_encoding = value_encoding_;
  const net::Message msg = core::make_message(rank(), round, payload, options);
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void FullSharingNode::aggregate(net::Network& network, const graph::Graph& g,
                                const graph::MixingWeights& weights,
                                std::uint32_t round) {
  (void)round;
  const std::vector<net::Message> inbox = network.drain(rank());
  std::vector<core::SparsePayload> payloads;
  payloads.reserve(inbox.size());
  std::vector<core::WeightedContribution> contributions;
  contributions.reserve(inbox.size());
  for (const net::Message& msg : inbox) {
    payloads.push_back(core::decode_payload(msg.body));
    contributions.push_back(
        {weight_of(g, weights, rank(), msg.sender), &payloads.back()});
  }
  std::vector<float> x = flat_params();
  core::partial_average(x, weights.self_weight[rank()], contributions);
  set_flat_params(x);
}

}  // namespace jwins::algo

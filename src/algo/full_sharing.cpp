#include "algo/full_sharing.hpp"

#include "core/averaging.hpp"

namespace jwins::algo {

FullSharingNode::FullSharingNode(std::uint32_t rank,
                                 std::unique_ptr<nn::SupervisedModel> model,
                                 data::Sampler sampler, TrainConfig config,
                                 core::ValueEncoding value_encoding)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      value_encoding_(value_encoding) {}

void FullSharingNode::share(net::Network& network, const graph::Graph& g,
                            const graph::MixingWeights& /*weights*/,
                            std::uint32_t round, core::RoundScratch& scratch) {
  scratch.reset();
  const std::span<float> x = scratch.arena.alloc<float>(param_count());
  flat_params_into(x);
  // Wire-only corruption: x is the arena staging copy, never written back,
  // so a byzantine node poisons its broadcast while training honestly.
  if (is_byzantine()) {
    corrupt_wire_values(x, round);
    note_corrupted_sends(g.neighbors(rank()).size());
  }
  core::PayloadView payload;
  payload.vector_length = static_cast<std::uint32_t>(x.size());
  payload.values = x;
  core::PayloadOptions options;
  options.index_encoding = core::IndexEncoding::kDense;
  options.value_encoding = value_encoding_;
  const net::Message msg = core::make_message(
      rank(), round, payload, options, network.pool(), scratch.bits);
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void FullSharingNode::aggregate(net::Network& network, const graph::Graph& g,
                                const graph::MixingWeights& weights,
                                std::uint32_t round,
                                core::RoundScratch& scratch) {
  scratch.reset();
  network.drain_into(rank(), scratch.inbox);
  const std::vector<net::Message>& inbox = scratch.inbox;
  for (const net::Message& msg : inbox) {
    core::decode_payload_into(msg.body, scratch.payloads.next(), scratch.arena);
  }
  // Pool references are stable once all payloads are decoded. Staleness
  // scales are all exactly 1.0 outside weighted async mode, in which case
  // the unscaled (bit-identical legacy) overload runs.
  bool scaled = false;
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    scratch.contributions.push_back(
        {weight_of(g, weights, rank(), inbox[i].sender), &scratch.payloads[i]});
    const double scale = staleness_scale(inbox[i].round, round);
    scratch.contribution_scales.push_back(scale);
    scaled = scaled || scale != 1.0;
  }
  const std::span<float> x = scratch.arena.alloc<float>(param_count());
  flat_params_into(x);
  robust_average(x, weights.self_weight[rank()], scratch.contributions,
                 scratch.contribution_scales, scaled, scratch.arena);
  set_flat_params(x);
}

}  // namespace jwins::algo

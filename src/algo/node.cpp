#include "algo/node.hpp"

#include <cmath>

#include "nn/flat.hpp"

namespace jwins::algo {

DlNode::DlNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
               data::Sampler sampler, TrainConfig config)
    : rank_(rank),
      model_(std::move(model)),
      sampler_(std::move(sampler)),
      config_(config),
      optimizer_(model_->parameters(), model_->gradients(), config.sgd) {}

float DlNode::local_train() {
  double total = 0.0;
  for (std::size_t s = 0; s < config_.local_steps; ++s) {
    const nn::Batch batch = sampler_.next();
    model_->zero_grad();
    total += model_->loss_and_grad(batch);
    optimizer_.step();
  }
  return static_cast<float>(total / static_cast<double>(config_.local_steps));
}

std::vector<float> DlNode::flat_params() {
  return nn::to_flat(model_->parameters());
}

void DlNode::flat_params_into(std::vector<float>& out) {
  out.resize(model_->parameter_count());
  nn::copy_to_flat(model_->parameters(), out);
}

void DlNode::flat_params_into(std::span<float> out) {
  nn::copy_to_flat(model_->parameters(), out);
}

void DlNode::set_flat_params(std::span<const float> flat) {
  nn::copy_from_flat(model_->parameters(), flat);
}

std::size_t DlNode::param_count() { return model_->parameter_count(); }

double DlNode::weight_of(const graph::Graph& g,
                         const graph::MixingWeights& weights,
                         std::uint32_t receiver, std::uint32_t sender) {
  const auto& nbrs = g.neighbors(receiver);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    if (nbrs[k] == sender) return weights.neighbor_weight[receiver][k];
  }
  return 0.0;
}

double DlNode::staleness_scale(std::uint32_t msg_round,
                               std::uint32_t round) const noexcept {
  // Messages from the current round or ahead of it (possible under free
  // aggregation) carry no staleness; decay applies only to genuinely old
  // tags. The >= 1.0 short-circuit keeps the default path branch-only.
  if (staleness_decay_ >= 1.0 || msg_round >= round) return 1.0;
  return std::pow(staleness_decay_,
                  static_cast<double>(round - msg_round));
}

double DlNode::contribution_weight(const graph::Graph& g,
                                   const graph::MixingWeights& weights,
                                   const net::Message& msg,
                                   std::uint32_t round) const {
  const double base = weight_of(g, weights, rank_, msg.sender);
  const double scale = staleness_scale(msg.round, round);
  // scale == 1.0 exactly on the undecayed path: return the unmultiplied
  // double so sync/barrier aggregation stays bit-identical.
  return scale == 1.0 ? base : base * scale;
}

}  // namespace jwins::algo

#include "algo/node.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "nn/flat.hpp"

namespace jwins::algo {

namespace {

/// Salt of the byzantine victim *choice* hash (derive_seed stream tag) —
/// distinct from kByzantineStream (the per-round corruption draws) and from
/// every net::TimeModel salt, so the byzantine set is an independent draw
/// from the crash set.
constexpr std::uint64_t kSaltByzantineChoice = 0xBADC;

}  // namespace

const char* byzantine_mode_name(ByzantineMode mode) {
  switch (mode) {
    case ByzantineMode::kRandom: return "random";
    case ByzantineMode::kSignFlip: return "sign_flip";
    case ByzantineMode::kScale: return "scale";
  }
  return "unknown";
}

std::vector<std::uint32_t> byzantine_victims(std::uint64_t seed,
                                             std::size_t nodes,
                                             std::size_t count) {
  // Mirror of net::TimeModel's crash-set construction: hash every node,
  // sort, take the first `count`. A pure function of (seed, nodes), so the
  // same set is reproducible from config validation, the Experiment wiring,
  // and tests.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  order.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    order.emplace_back(core::derive_seed(seed, i, 0, kSaltByzantineChoice),
                       static_cast<std::uint32_t>(i));
  }
  std::sort(order.begin(), order.end());
  std::vector<std::uint32_t> victims;
  const std::size_t k = std::min(count, nodes);
  victims.reserve(k);
  for (std::size_t i = 0; i < k; ++i) victims.push_back(order[i].second);
  std::sort(victims.begin(), victims.end());
  return victims;
}

DlNode::DlNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
               data::Sampler sampler, TrainConfig config)
    : rank_(rank),
      model_(std::move(model)),
      sampler_(std::move(sampler)),
      config_(config),
      optimizer_(model_->parameters(), model_->gradients(), config.sgd) {}

float DlNode::local_train() {
  double total = 0.0;
  for (std::size_t s = 0; s < config_.local_steps; ++s) {
    const nn::Batch batch = sampler_.next();
    model_->zero_grad();
    total += model_->loss_and_grad(batch);
    optimizer_.step();
  }
  return static_cast<float>(total / static_cast<double>(config_.local_steps));
}

std::vector<float> DlNode::flat_params() {
  return nn::to_flat(model_->parameters());
}

void DlNode::flat_params_into(std::vector<float>& out) {
  out.resize(model_->parameter_count());
  nn::copy_to_flat(model_->parameters(), out);
}

void DlNode::flat_params_into(std::span<float> out) {
  nn::copy_to_flat(model_->parameters(), out);
}

void DlNode::set_flat_params(std::span<const float> flat) {
  nn::copy_from_flat(model_->parameters(), flat);
}

std::size_t DlNode::param_count() { return model_->parameter_count(); }

double DlNode::weight_of(const graph::Graph& g,
                         const graph::MixingWeights& weights,
                         std::uint32_t receiver, std::uint32_t sender) {
  const auto& nbrs = g.neighbors(receiver);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    if (nbrs[k] == sender) return weights.neighbor_weight[receiver][k];
  }
  return 0.0;
}

double DlNode::staleness_scale(std::uint32_t msg_round,
                               std::uint32_t round) const noexcept {
  // Messages from the current round or ahead of it (possible under free
  // aggregation) carry no staleness; decay applies only to genuinely old
  // tags. The >= 1.0 short-circuit keeps the default path branch-only.
  if (staleness_decay_ >= 1.0 || msg_round >= round) return 1.0;
  return std::pow(staleness_decay_,
                  static_cast<double>(round - msg_round));
}

double DlNode::contribution_weight(const graph::Graph& g,
                                   const graph::MixingWeights& weights,
                                   const net::Message& msg,
                                   std::uint32_t round) const {
  const double base = weight_of(g, weights, rank_, msg.sender);
  const double scale = staleness_scale(msg.round, round);
  // scale == 1.0 exactly on the undecayed path: return the unmultiplied
  // double so sync/barrier aggregation stays bit-identical.
  return scale == 1.0 ? base : base * scale;
}

void DlNode::corrupt_wire_values(std::span<float> values, std::uint32_t round,
                                 std::uint64_t salt) {
  switch (byzantine_mode_) {
    case ByzantineMode::kSignFlip:
      for (float& v : values) v = -v;
      break;
    case ByzantineMode::kScale: {
      const float k = static_cast<float>(byzantine_scale_);
      for (float& v : values) v *= k;
      break;
    }
    case ByzantineMode::kRandom: {
      // Seeded garbage of roughly unit magnitude, decoupled from the honest
      // values: a fresh counter stream per (node, round, span), so threaded
      // and replayed runs corrupt identically.
      core::CounterRng rng = round_rng(round, kByzantineStream + salt);
      for (float& v : values) {
        v = static_cast<float>((rng() >> 11) * 0x1.0p-53 * 2.0 - 1.0);
      }
      break;
    }
  }
}

void DlNode::robust_average(
    std::span<float> own, double self_weight,
    std::span<const core::WeightedContribution> contributions,
    std::span<const double> contribution_scales, bool scaled,
    core::Arena& arena) {
  if (robust_.kind == core::RobustAggKind::kNone) {
    // Exactly the overload selection the algorithms performed before the
    // robust layer existed — golden runs stay byte-identical.
    if (scaled) {
      core::partial_average(own, self_weight, contributions,
                            contribution_scales, arena);
    } else {
      core::partial_average(own, self_weight, contributions, arena);
    }
    return;
  }
  core::robust_partial_average(
      robust_, own, self_weight, contributions,
      scaled ? contribution_scales : std::span<const double>{}, arena,
      &robust_counters_);
}

}  // namespace jwins::algo

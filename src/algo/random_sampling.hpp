// Random-sampling sparsification baseline (paper §II-B2a): a fixed fraction
// of parameter indices is drawn each round from a shared-seed PRNG, so the
// metadata cost collapses to one 8-byte seed. Aggregation is partial
// weighted averaging in the parameter domain.
#pragma once

#include "algo/node.hpp"
#include "core/sparse_payload.hpp"

namespace jwins::algo {

class RandomSamplingNode final : public DlNode {
 public:
  /// `fraction` of parameters shared per round (the paper uses 37% to match
  /// JWINS' expected budget in the Table-I runs).
  RandomSamplingNode(std::uint32_t rank,
                     std::unique_ptr<nn::SupervisedModel> model,
                     data::Sampler sampler, TrainConfig config, double fraction,
                     std::uint64_t seed_base = 0x5EEDBA5Eull);

  void share(net::Network& network, const graph::Graph& g,
             const graph::MixingWeights& weights, std::uint32_t round,
             core::RoundScratch& scratch) override;
  void aggregate(net::Network& network, const graph::Graph& g,
                 const graph::MixingWeights& weights, std::uint32_t round,
                 core::RoundScratch& scratch) override;

 private:
  double fraction_;
  std::uint64_t seed_base_;
  std::vector<std::uint32_t> indices_;  ///< reused per-round sample buffer
};

}  // namespace jwins::algo

// Non-IID data partitioners (paper §IV-B d).
//
// * shard_partition — the CIFAR-10 scheme: sort by label, cut into
//   nodes*shards_per_node contiguous shards, deal shards_per_node random
//   shards to each node. With 2 shards/node each node sees at most 4 classes.
// * client_partition — the LEAF scheme: samples are grouped by the client
//   that produced them; clients are dealt evenly across nodes.
// * iid_partition — control condition.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace jwins::data {

using Partition = std::vector<std::vector<std::size_t>>;

/// Random equal split of [0, dataset.size()).
Partition iid_partition(const Dataset& dataset, std::size_t nodes,
                        std::uint64_t seed);

/// Sort-by-label sharding. Requires dataset.label_of() >= 0 for all samples.
Partition shard_partition(const Dataset& dataset, std::size_t nodes,
                          std::size_t shards_per_node, std::uint64_t seed);

/// Groups samples by client and deals whole clients to nodes (each node gets
/// an equal number of clients; requires client_count() >= nodes).
Partition client_partition(const Dataset& dataset, std::size_t nodes,
                           std::uint64_t seed);

/// Deterministic striding split for huge node counts: node i gets the
/// `per_node` indices {(i * per_node + j) % samples}. No RNG, no dataset
/// walk — O(nodes * per_node) total, so a million-node partition builds in
/// milliseconds where the shuffling partitioners above would dominate the
/// run. Nodes wrap around the sample pool once nodes * per_node > samples
/// (shards overlap; fine for the synthetic scale workload).
Partition cyclic_partition(std::size_t samples, std::size_t nodes,
                           std::size_t per_node);

/// Number of distinct labels present in a node's shard (diagnostic used by
/// tests to verify non-IIDness).
std::size_t distinct_labels(const Dataset& dataset,
                            const std::vector<std::size_t>& indices);

}  // namespace jwins::data

// Synthetic dataset generators standing in for the paper's datasets.
//
// The real CIFAR-10 / MovieLens / LEAF corpora are unavailable offline, so
// each generator produces a deterministic, seeded workload with the same
// *structure* the paper's evaluation relies on (task family, label/client
// non-IIDness, model family). The substitution ledger in docs/DESIGN.md maps
// each generator to the dataset it replaces.
//
// Every config has two seeds: `seed` fixes the underlying distribution
// (class prototypes / rating factors / transition matrices) and
// `sample_seed` fixes which samples are drawn from it. Train and test sets
// share `seed` but use different `sample_seed`s, giving disjoint draws from
// one distribution, like a real train/test split.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "tensor/tensor.hpp"

namespace jwins::data {

/// Class-conditional image classification (CIFAR-10 / CelebA / FEMNIST
/// stand-in). Every class has a smooth random prototype pattern; a sample is
/// prototype + Gaussian noise; optional per-client style offsets model
/// writer non-IIDness (FEMNIST).
class SyntheticImages final : public Dataset {
 public:
  struct Config {
    std::size_t classes = 10;
    std::size_t channels = 3;
    std::size_t image_size = 8;   ///< square images
    std::size_t samples = 2048;
    float noise = 0.6f;           ///< per-pixel Gaussian noise stddev
    std::size_t clients = 0;      ///< 0 = no client structure
    float client_style = 0.0f;    ///< strength of per-client style shift
    std::uint32_t seed = 1;        ///< distribution (prototypes/styles)
    std::uint32_t sample_seed = 1000;  ///< sample draw stream
  };

  explicit SyntheticImages(Config config);

  std::size_t size() const override { return labels_.size(); }
  Batch make_batch(std::span<const std::size_t> indices) const override;
  std::int32_t label_of(std::size_t index) const override;
  std::int32_t client_of(std::size_t index) const override;
  std::size_t client_count() const override { return config_.clients; }

  const Config& config() const noexcept { return config_; }

  /// Pixels of one sample (channels*size*size floats), for direct access.
  std::span<const float> pixels(std::size_t index) const;

 private:
  Config config_;
  std::size_t pixels_per_sample_;
  std::vector<float> data_;           // samples * pixels
  std::vector<std::int32_t> labels_;  // per sample
  std::vector<std::int32_t> clients_;
};

/// Low-rank ratings (MovieLens stand-in): ratings are generated from a
/// ground-truth factor model and clipped to [1, 5]; each user is a client.
class SyntheticRatings final : public Dataset {
 public:
  struct Config {
    std::size_t users = 64;
    std::size_t items = 128;
    std::size_t true_rank = 4;
    std::size_t ratings_per_user = 24;
    float noise = 0.25f;
    std::uint32_t seed = 1;
    std::uint32_t sample_seed = 1000;
  };

  explicit SyntheticRatings(Config config);

  std::size_t size() const override { return entries_.size(); }
  Batch make_batch(std::span<const std::size_t> indices) const override;
  std::int32_t client_of(std::size_t index) const override;
  std::size_t client_count() const override { return config_.users; }

  const Config& config() const noexcept { return config_; }
  float rating_mean() const noexcept { return rating_mean_; }

 private:
  struct Entry {
    std::uint32_t user;
    std::uint32_t item;
    float rating;
  };

  Config config_;
  std::vector<Entry> entries_;
  float rating_mean_ = 0.0f;
};

/// Markov-chain character streams (Shakespeare stand-in): every client owns
/// a distinct character transition matrix (shared base + client-specific
/// perturbation), giving real per-client distribution shift for the
/// next-character task.
class SyntheticText final : public Dataset {
 public:
  struct Config {
    std::size_t vocab = 30;
    std::size_t seq_len = 16;
    std::size_t clients = 16;
    std::size_t samples_per_client = 32;
    float client_style = 0.6f;  ///< 0 = identical clients, 1 = fully distinct
    std::uint32_t seed = 1;
    std::uint32_t sample_seed = 1000;
  };

  explicit SyntheticText(Config config);

  std::size_t size() const override { return clients_.size(); }
  Batch make_batch(std::span<const std::size_t> indices) const override;
  std::int32_t client_of(std::size_t index) const override;
  std::size_t client_count() const override { return config_.clients; }

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  // tokens_ holds (seq_len + 1) chars per sample: input window + final target.
  std::vector<std::uint8_t> tokens_;
  std::vector<std::int32_t> clients_;
};

}  // namespace jwins::data

#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/rng.hpp"

namespace jwins::data {

Sampler::Sampler(const Dataset& dataset, std::vector<std::size_t> indices,
                 std::size_t batch_size, std::uint64_t seed, Mode mode)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      rng_(seed),
      mode_(mode),
      seed_(seed) {
  if (indices_.empty()) {
    throw std::invalid_argument("Sampler: empty index set");
  }
  if (batch_size_ == 0) {
    throw std::invalid_argument("Sampler: batch size must be positive");
  }
  // The counter stream indexes the shard in its given (partition) order:
  // shuffling here would make the draw depend on which object the shard
  // was bound to, breaking rebind()'s full-vs-compact equivalence.
  if (mode_ == Mode::kShuffle) {
    std::shuffle(indices_.begin(), indices_.end(), rng_);
  }
}

Batch Sampler::next() {
  if (mode_ == Mode::kCounter) {
    const std::size_t take = std::min(batch_size_, indices_.size());
    core::CounterRng rng(seed_, 0, step_, 0);
    pick_.resize(take);
    for (std::size_t j = 0; j < take; ++j) {
      pick_[j] = indices_[rng() % indices_.size()];
    }
    ++step_;
    return dataset_->make_batch(pick_);
  }
  const std::size_t take = std::min(batch_size_, indices_.size());
  if (cursor_ + take > indices_.size()) {
    std::shuffle(indices_.begin(), indices_.end(), rng_);
    cursor_ = 0;
  }
  std::span<const std::size_t> slice(indices_.data() + cursor_, take);
  cursor_ += take;
  return dataset_->make_batch(slice);
}

void Sampler::seek(std::size_t step) {
  if (mode_ != Mode::kCounter) {
    throw std::logic_error("Sampler: seek() requires counter mode");
  }
  step_ = step;
}

void Sampler::rebind(std::span<const std::size_t> indices, std::uint64_t seed,
                     std::size_t step) {
  if (mode_ != Mode::kCounter) {
    throw std::logic_error("Sampler: rebind() requires counter mode");
  }
  if (indices.empty()) {
    throw std::invalid_argument("Sampler: rebind to empty index set");
  }
  indices_.assign(indices.begin(), indices.end());
  seed_ = seed;
  step_ = step;
}

std::size_t Sampler::batches_per_epoch() const noexcept {
  return std::max<std::size_t>(1, indices_.size() / batch_size_);
}

Batch full_batch(const Dataset& dataset, std::size_t limit) {
  const std::size_t n =
      limit == 0 ? dataset.size() : std::min(limit, dataset.size());
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0u);
  return dataset.make_batch(indices);
}

}  // namespace jwins::data

#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace jwins::data {

Sampler::Sampler(const Dataset& dataset, std::vector<std::size_t> indices,
                 std::size_t batch_size, std::uint64_t seed)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      rng_(seed) {
  if (indices_.empty()) {
    throw std::invalid_argument("Sampler: empty index set");
  }
  if (batch_size_ == 0) {
    throw std::invalid_argument("Sampler: batch size must be positive");
  }
  std::shuffle(indices_.begin(), indices_.end(), rng_);
}

Batch Sampler::next() {
  const std::size_t take = std::min(batch_size_, indices_.size());
  if (cursor_ + take > indices_.size()) {
    std::shuffle(indices_.begin(), indices_.end(), rng_);
    cursor_ = 0;
  }
  std::span<const std::size_t> slice(indices_.data() + cursor_, take);
  cursor_ += take;
  return dataset_->make_batch(slice);
}

std::size_t Sampler::batches_per_epoch() const noexcept {
  return std::max<std::size_t>(1, indices_.size() / batch_size_);
}

Batch full_batch(const Dataset& dataset, std::size_t limit) {
  const std::size_t n =
      limit == 0 ? dataset.size() : std::min(limit, dataset.size());
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0u);
  return dataset.make_batch(indices);
}

}  // namespace jwins::data

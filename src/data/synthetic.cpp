#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace jwins::data {

namespace {

/// Smooth 2-D pattern: a small sum of random sinusoids. Low-frequency
/// structure matters because the DWT-based ranking exploits smoothness; pure
/// white-noise prototypes would make every transform equally bad.
std::vector<float> smooth_pattern(std::size_t channels, std::size_t side,
                                  std::mt19937& rng, float amplitude) {
  std::uniform_real_distribution<float> phase(0.0f, 2.0f * std::numbers::pi_v<float>);
  std::uniform_real_distribution<float> freq(0.5f, 2.5f);
  std::uniform_real_distribution<float> amp(0.3f * amplitude, amplitude);
  std::vector<float> out(channels * side * side, 0.0f);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    for (int wave = 0; wave < 3; ++wave) {
      const float fy = freq(rng), fx = freq(rng), ph = phase(rng), a = amp(rng);
      for (std::size_t y = 0; y < side; ++y) {
        for (std::size_t x = 0; x < side; ++x) {
          const float arg = 2.0f * std::numbers::pi_v<float> *
                                (fy * static_cast<float>(y) +
                                 fx * static_cast<float>(x)) /
                                static_cast<float>(side) +
                            ph;
          out[(ch * side + y) * side + x] += a * std::sin(arg);
        }
      }
    }
  }
  return out;
}

}  // namespace

SyntheticImages::SyntheticImages(Config config)
    : config_(config),
      pixels_per_sample_(config.channels * config.image_size * config.image_size) {
  if (config_.classes == 0 || config_.samples == 0) {
    throw std::invalid_argument("SyntheticImages: classes and samples must be positive");
  }
  // Distribution stream: prototypes and client styles.
  std::mt19937 dist_rng(config_.seed);
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(config_.classes);
  for (std::size_t c = 0; c < config_.classes; ++c) {
    prototypes.push_back(
        smooth_pattern(config_.channels, config_.image_size, dist_rng, 1.0f));
  }
  std::vector<std::vector<float>> styles;
  for (std::size_t c = 0; c < config_.clients; ++c) {
    styles.push_back(smooth_pattern(config_.channels, config_.image_size,
                                    dist_rng, config_.client_style));
  }

  // Sample stream: labels and pixel noise.
  std::mt19937 rng(config_.sample_seed);
  data_.resize(config_.samples * pixels_per_sample_);
  labels_.resize(config_.samples);
  clients_.resize(config_.samples, -1);
  std::uniform_int_distribution<std::size_t> label_dist(0, config_.classes - 1);
  std::normal_distribution<float> noise(0.0f, config_.noise);
  for (std::size_t s = 0; s < config_.samples; ++s) {
    const std::size_t label = label_dist(rng);
    labels_[s] = static_cast<std::int32_t>(label);
    const std::size_t client =
        config_.clients == 0 ? 0 : s % config_.clients;  // balanced clients
    if (config_.clients > 0) clients_[s] = static_cast<std::int32_t>(client);
    float* dst = data_.data() + s * pixels_per_sample_;
    const float* proto = prototypes[label].data();
    const float* style = config_.clients > 0 ? styles[client].data() : nullptr;
    for (std::size_t i = 0; i < pixels_per_sample_; ++i) {
      dst[i] = proto[i] + noise(rng) + (style ? style[i] : 0.0f);
    }
  }
}

Batch SyntheticImages::make_batch(std::span<const std::size_t> indices) const {
  Batch batch;
  const std::size_t n = indices.size();
  batch.x = tensor::Tensor(
      {n, config_.channels, config_.image_size, config_.image_size});
  batch.labels.resize(n);
  float* dst = batch.x.raw();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = indices[i];
    if (s >= size()) throw std::out_of_range("SyntheticImages: index out of range");
    std::copy_n(data_.data() + s * pixels_per_sample_, pixels_per_sample_,
                dst + i * pixels_per_sample_);
    batch.labels[i] = labels_[s];
  }
  return batch;
}

std::int32_t SyntheticImages::label_of(std::size_t index) const {
  return labels_.at(index);
}

std::int32_t SyntheticImages::client_of(std::size_t index) const {
  return clients_.at(index);
}

std::span<const float> SyntheticImages::pixels(std::size_t index) const {
  if (index >= size()) throw std::out_of_range("SyntheticImages: index out of range");
  return {data_.data() + index * pixels_per_sample_, pixels_per_sample_};
}

SyntheticRatings::SyntheticRatings(Config config) : config_(config) {
  if (config_.users == 0 || config_.items == 0) {
    throw std::invalid_argument("SyntheticRatings: users and items must be positive");
  }
  // Distribution stream: ground-truth factors and biases.
  std::mt19937 dist_rng(config_.seed);
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.true_rank));
  std::normal_distribution<float> factor(0.0f, scale);
  std::normal_distribution<float> bias(0.0f, 0.3f);

  std::vector<float> user_f(config_.users * config_.true_rank);
  std::vector<float> item_f(config_.items * config_.true_rank);
  std::vector<float> user_b(config_.users);
  std::vector<float> item_b(config_.items);
  for (float& v : user_f) v = factor(dist_rng);
  for (float& v : item_f) v = factor(dist_rng);
  for (float& v : user_b) v = bias(dist_rng);
  for (float& v : item_b) v = bias(dist_rng);

  // Sample stream: which items each user rates and the observation noise.
  std::mt19937 rng(config_.sample_seed);
  std::normal_distribution<float> noise(0.0f, config_.noise);
  double sum = 0.0;
  entries_.reserve(config_.users * config_.ratings_per_user);
  std::uniform_int_distribution<std::uint32_t> item_dist(
      0, static_cast<std::uint32_t>(config_.items - 1));
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    for (std::size_t r = 0; r < config_.ratings_per_user; ++r) {
      const std::uint32_t it = item_dist(rng);
      double v = 3.0 + user_b[u] + item_b[it] + noise(rng);
      for (std::size_t d = 0; d < config_.true_rank; ++d) {
        v += static_cast<double>(user_f[u * config_.true_rank + d]) *
             item_f[it * config_.true_rank + d] * 2.0;
      }
      const float rating = std::clamp(static_cast<float>(v), 1.0f, 5.0f);
      entries_.push_back({u, it, rating});
      sum += rating;
    }
  }
  rating_mean_ = entries_.empty()
                     ? 0.0f
                     : static_cast<float>(sum / static_cast<double>(entries_.size()));
}

Batch SyntheticRatings::make_batch(std::span<const std::size_t> indices) const {
  Batch batch;
  const std::size_t n = indices.size();
  batch.x = tensor::Tensor({n, 2});
  batch.y = tensor::Tensor({n});
  for (std::size_t i = 0; i < n; ++i) {
    const Entry& e = entries_.at(indices[i]);
    batch.x[i * 2] = static_cast<float>(e.user);
    batch.x[i * 2 + 1] = static_cast<float>(e.item);
    batch.y[i] = e.rating;
  }
  return batch;
}

std::int32_t SyntheticRatings::client_of(std::size_t index) const {
  return static_cast<std::int32_t>(entries_.at(index).user);
}

SyntheticText::SyntheticText(Config config) : config_(config) {
  if (config_.vocab < 2 || config_.seq_len == 0 || config_.clients == 0) {
    throw std::invalid_argument("SyntheticText: invalid configuration");
  }
  const std::size_t v = config_.vocab;
  // Distribution stream. Each transition row is peaked: 75% of the mass on
  // one "preferred" next character, the rest uniform. That makes the task
  // learnable (per-character accuracy ceiling ~75%, like natural text where
  // the next character is often predictable) while per-client preferred
  // characters create genuine distribution shift: with probability
  // `client_style` a row's preferred character is client-specific instead of
  // the globally shared one.
  std::mt19937 dist_rng(config_.seed);
  std::uniform_int_distribution<std::size_t> pick_char(0, v - 1);
  std::uniform_real_distribution<float> u01d(0.0f, 1.0f);
  std::vector<std::size_t> global_preferred(v);
  for (std::size_t row = 0; row < v; ++row) global_preferred[row] = pick_char(dist_rng);
  constexpr float kPeak = 0.75f;
  std::vector<std::vector<float>> client_cdfs(config_.clients);
  for (std::size_t c = 0; c < config_.clients; ++c) {
    std::vector<float>& cdf = client_cdfs[c];
    cdf.resize(v * v);
    for (std::size_t row = 0; row < v; ++row) {
      const bool own_style = u01d(dist_rng) < config_.client_style;
      const std::size_t preferred =
          own_style ? pick_char(dist_rng) : global_preferred[row];
      float total = 0.0f;
      for (std::size_t col = 0; col < v; ++col) {
        const float p = (1.0f - kPeak) / static_cast<float>(v) +
                        (col == preferred ? kPeak : 0.0f);
        total += p;
        cdf[row * v + col] = total;
      }
      for (std::size_t col = 0; col < v; ++col) cdf[row * v + col] /= total;
    }
  }

  // Sample stream: the generated character sequences.
  std::mt19937 rng(config_.sample_seed);
  const std::size_t sample_tokens = config_.seq_len + 1;
  tokens_.reserve(config_.clients * config_.samples_per_client * sample_tokens);
  clients_.reserve(config_.clients * config_.samples_per_client);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  std::uniform_int_distribution<std::size_t> start(0, v - 1);
  for (std::size_t c = 0; c < config_.clients; ++c) {
    const std::vector<float>& cdf = client_cdfs[c];
    for (std::size_t s = 0; s < config_.samples_per_client; ++s) {
      std::size_t cur = start(rng);
      tokens_.push_back(static_cast<std::uint8_t>(cur));
      for (std::size_t t = 1; t < sample_tokens; ++t) {
        const float r = u01(rng);
        const float* row = cdf.data() + cur * v;
        const std::size_t next = static_cast<std::size_t>(
            std::lower_bound(row, row + v, r) - row);
        cur = std::min(next, v - 1);
        tokens_.push_back(static_cast<std::uint8_t>(cur));
      }
      clients_.push_back(static_cast<std::int32_t>(c));
    }
  }
}

Batch SyntheticText::make_batch(std::span<const std::size_t> indices) const {
  Batch batch;
  const std::size_t n = indices.size();
  const std::size_t t_len = config_.seq_len;
  const std::size_t sample_tokens = t_len + 1;
  batch.x = tensor::Tensor({n, t_len});
  batch.labels.resize(n * t_len);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = indices[i];
    if (s >= size()) throw std::out_of_range("SyntheticText: index out of range");
    const std::uint8_t* seq = tokens_.data() + s * sample_tokens;
    for (std::size_t t = 0; t < t_len; ++t) {
      batch.x[i * t_len + t] = static_cast<float>(seq[t]);
      batch.labels[i * t_len + t] = static_cast<std::int32_t>(seq[t + 1]);
    }
  }
  return batch;
}

std::int32_t SyntheticText::client_of(std::size_t index) const {
  return clients_.at(index);
}

}  // namespace jwins::data

#include "data/partition.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <set>
#include <stdexcept>

namespace jwins::data {

Partition iid_partition(const Dataset& dataset, std::size_t nodes,
                        std::uint64_t seed) {
  if (nodes == 0) throw std::invalid_argument("iid_partition: nodes must be positive");
  std::vector<std::size_t> all(dataset.size());
  std::iota(all.begin(), all.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(all.begin(), all.end(), rng);
  Partition out(nodes);
  for (std::size_t i = 0; i < all.size(); ++i) {
    out[i % nodes].push_back(all[i]);
  }
  return out;
}

Partition shard_partition(const Dataset& dataset, std::size_t nodes,
                          std::size_t shards_per_node, std::uint64_t seed) {
  if (nodes == 0 || shards_per_node == 0) {
    throw std::invalid_argument("shard_partition: nodes and shards must be positive");
  }
  std::vector<std::size_t> all(dataset.size());
  std::iota(all.begin(), all.end(), 0u);
  for (std::size_t idx : all) {
    if (dataset.label_of(idx) < 0) {
      throw std::invalid_argument("shard_partition: dataset has no labels");
    }
  }
  std::sort(all.begin(), all.end(), [&](std::size_t a, std::size_t b) {
    const auto la = dataset.label_of(a), lb = dataset.label_of(b);
    return la != lb ? la < lb : a < b;
  });
  const std::size_t total_shards = nodes * shards_per_node;
  if (all.size() < total_shards) {
    throw std::invalid_argument("shard_partition: fewer samples than shards");
  }
  std::vector<std::size_t> shard_order(total_shards);
  std::iota(shard_order.begin(), shard_order.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(shard_order.begin(), shard_order.end(), rng);

  Partition out(nodes);
  const std::size_t shard_size = all.size() / total_shards;
  for (std::size_t node = 0; node < nodes; ++node) {
    for (std::size_t s = 0; s < shards_per_node; ++s) {
      const std::size_t shard = shard_order[node * shards_per_node + s];
      const std::size_t begin = shard * shard_size;
      // The last shard absorbs the remainder.
      const std::size_t end =
          (shard + 1 == total_shards) ? all.size() : begin + shard_size;
      out[node].insert(out[node].end(), all.begin() + static_cast<std::ptrdiff_t>(begin),
                       all.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return out;
}

Partition client_partition(const Dataset& dataset, std::size_t nodes,
                           std::uint64_t seed) {
  const std::size_t clients = dataset.client_count();
  if (clients < nodes) {
    throw std::invalid_argument("client_partition: fewer clients than nodes");
  }
  std::vector<std::vector<std::size_t>> by_client(clients);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const std::int32_t c = dataset.client_of(i);
    if (c < 0) {
      throw std::invalid_argument("client_partition: dataset has no client ids");
    }
    by_client[static_cast<std::size_t>(c)].push_back(i);
  }
  std::vector<std::size_t> client_order(clients);
  std::iota(client_order.begin(), client_order.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(client_order.begin(), client_order.end(), rng);

  Partition out(nodes);
  for (std::size_t i = 0; i < clients; ++i) {
    auto& dst = out[i % nodes];
    const auto& src = by_client[client_order[i]];
    dst.insert(dst.end(), src.begin(), src.end());
  }
  return out;
}

Partition cyclic_partition(std::size_t samples, std::size_t nodes,
                           std::size_t per_node) {
  if (samples == 0 || nodes == 0 || per_node == 0) {
    throw std::invalid_argument(
        "cyclic_partition: samples, nodes, and per_node must be positive");
  }
  Partition out(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    out[i].reserve(per_node);
    for (std::size_t j = 0; j < per_node; ++j) {
      out[i].push_back((i * per_node + j) % samples);
    }
  }
  return out;
}

std::size_t distinct_labels(const Dataset& dataset,
                            const std::vector<std::size_t>& indices) {
  std::set<std::int32_t> labels;
  for (std::size_t idx : indices) labels.insert(dataset.label_of(idx));
  return labels.size();
}

}  // namespace jwins::data

// Dataset abstraction + batching for the decentralized training loop.
//
// A Dataset is an indexable collection of samples that can materialize any
// index subset as an nn::Batch. Nodes own index lists produced by the
// partitioners (non-IID splits) and draw mini-batches through a Sampler.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "nn/model.hpp"

namespace jwins::data {

using nn::Batch;

class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::size_t size() const = 0;

  /// Materializes the given sample indices as one batch.
  virtual Batch make_batch(std::span<const std::size_t> indices) const = 0;

  /// Class label of a sample, or -1 for non-classification tasks. Used by
  /// the label-sharding partitioner.
  virtual std::int32_t label_of(std::size_t index) const { (void)index; return -1; }

  /// Client (data producer) of a sample, or -1 if the dataset has no client
  /// structure. Used by the client partitioner (LEAF-style datasets).
  virtual std::int32_t client_of(std::size_t index) const { (void)index; return -1; }

  /// Number of distinct clients (0 if none).
  virtual std::size_t client_count() const { return 0; }
};

/// Draws shuffled mini-batches from a fixed index subset (one node's shard),
/// reshuffling each epoch — the standard local SGD sampling loop.
///
/// kCounter mode replaces the stateful shuffle with a counter-keyed draw:
/// step s samples `batch_size` indices with replacement from a fresh
/// core::CounterRng keyed on (seed, s). The stream is a pure function of
/// (seed, step), so it can be repositioned with seek() and the whole sampler
/// retargeted to another node's shard with rebind() — the property the
/// compact node-state engine uses to run millions of simulated nodes through
/// a handful of lane-worker samplers without per-node sampler state.
class Sampler {
 public:
  enum class Mode { kShuffle, kCounter };

  Sampler(const Dataset& dataset, std::vector<std::size_t> indices,
          std::size_t batch_size, std::uint64_t seed,
          Mode mode = Mode::kShuffle);

  /// Next mini-batch; wraps around (new shuffle) at epoch end. In kCounter
  /// mode: the step_-keyed with-replacement draw, then step_ advances.
  Batch next();

  std::size_t sample_count() const noexcept { return indices_.size(); }
  std::size_t batch_size() const noexcept { return batch_size_; }
  Mode mode() const noexcept { return mode_; }

  /// Number of batches per full pass over the local data.
  std::size_t batches_per_epoch() const noexcept;

  /// Repositions the counter stream so the next draw is step `step`'s
  /// (kCounter only; throws in kShuffle mode, whose stream is stateful).
  void seek(std::size_t step);

  /// Retargets this sampler at another shard/stream without allocating in
  /// steady state (kCounter only): `indices` are copied into the existing
  /// storage, the stream key becomes `seed`, and the position `step`.
  void rebind(std::span<const std::size_t> indices, std::uint64_t seed,
              std::size_t step);

 private:
  const Dataset* dataset_;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  std::size_t cursor_ = 0;
  std::mt19937_64 rng_;
  Mode mode_ = Mode::kShuffle;
  std::uint64_t seed_ = 0;    ///< kCounter stream key
  std::size_t step_ = 0;      ///< kCounter position
  std::vector<std::size_t> pick_;  ///< kCounter per-draw scratch
};

/// Materializes the whole dataset (or an `limit`-sized prefix subsample) as
/// a single batch — used for test-set evaluation.
Batch full_batch(const Dataset& dataset, std::size_t limit = 0);

}  // namespace jwins::data

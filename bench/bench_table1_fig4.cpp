// Table I + Figure 4: full-sharing vs random-sampling vs JWINS on all five
// dataset stand-ins for a fixed number of rounds.
//
// Reproduced rows: final test accuracy per algorithm, total data sent, and
// JWINS' network savings vs full-sharing. Paper shape: JWINS accuracy ~=
// full-sharing (within a few points), beats random sampling, while sending
// ~60-64% fewer bytes than full-sharing.
//
// Experiment wiring comes from scenarios/table1_fig4.scenario (override
// with --scenario=PATH); this driver only keeps the paper's per-dataset
// round budgets, setting `workload`/`rounds` per table row.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace jwins;

struct DatasetRounds {
  const char* name;
  std::size_t rounds;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t round_scale = flags.get("round-scale", std::size_t{1});
  const std::string only = flags.get("dataset", std::string{});

  config::RawScenario raw = bench::load_preset(flags, "table1_fig4.scenario");
  bench::override_if(flags, raw, "nodes", "nodes");
  bench::override_if(flags, raw, "seed", "seed");
  bench::override_if(flags, raw, "threads", "threads");
  std::size_t nodes = 0;
  try {
    nodes = config::expand_grid(raw).front().nodes;
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  // Rounds tuned per task difficulty, mirroring the paper's per-dataset
  // epoch counts (Table I).
  const std::vector<DatasetRounds> schedule{
      {"cifar", 90}, {"movielens", 140}, {"shakespeare", 120},
      {"celeba", 40}, {"femnist", 60}};

  std::cout << "=== Table I / Figure 4: JWINS vs full-sharing vs random "
               "sampling ===\n";
  std::cout << "nodes=" << nodes << "  (paper: 96; scale with --nodes)\n\n";

  std::cout << std::left << std::setw(14) << "DATASET" << std::setw(10)
            << "ROUNDS" << std::setw(12) << "FULL-ACC" << std::setw(12)
            << "RAND-ACC" << std::setw(12) << "JWINS-ACC" << std::setw(14)
            << "FULL-DATA" << std::setw(14) << "JWINS-DATA" << "SAVINGS\n";

  for (const auto& [name, base_rounds] : schedule) {
    if (!only.empty() && only != name) continue;
    const std::size_t rounds = base_rounds * round_scale;
    config::set_value(raw, "workload", name);
    config::set_value(raw, "rounds", std::to_string(rounds));
    config::set_value(
        raw, "eval_every",
        std::to_string(std::max<std::size_t>(1, rounds / 10)));

    std::vector<config::ScenarioRun> runs;
    try {
      runs = config::expand_grid(raw);
    } catch (const config::ScenarioError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    auto run = [&](sim::Algorithm algorithm) {
      for (const config::ScenarioRun& r : runs) {
        if (r.config.algorithm == algorithm) return config::execute(r);
      }
      std::cerr << "error: algorithm: the scenario grid has no "
                << sim::algorithm_name(algorithm)
                << " cell (this bench needs all three)\n";
      std::exit(2);
    };

    const auto full = run(sim::Algorithm::kFullSharing);
    const auto rand = run(sim::Algorithm::kRandomSampling);
    const auto jw = run(sim::Algorithm::kJwins);

    const double full_bytes = full.series.back().avg_bytes_per_node;
    const double jwins_bytes = jw.series.back().avg_bytes_per_node;
    const double savings = 100.0 * (1.0 - jwins_bytes / full_bytes);

    std::cout << std::left << std::setw(14) << name << std::setw(10) << rounds
              << std::setw(12) << std::fixed << std::setprecision(1)
              << full.final_accuracy * 100.0 << std::setw(12)
              << rand.final_accuracy * 100.0 << std::setw(12)
              << jw.final_accuracy * 100.0 << std::setw(14)
              << sim::format_bytes(full_bytes) << std::setw(14)
              << sim::format_bytes(jwins_bytes) << std::setprecision(1)
              << savings << " %\n";

    // Figure 4 series (accuracy/loss/bytes curves per algorithm).
    std::cout << "\n";
    sim::print_series_csv(std::cout, std::string(name) + "/full-sharing", full);
    sim::print_series_csv(std::cout, std::string(name) + "/random-sampling", rand);
    sim::print_series_csv(std::cout, std::string(name) + "/jwins", jw);
    std::cout << "\n";
  }
  std::cout << "paper shape check: JWINS-ACC ~= FULL-ACC > RAND-ACC, savings "
               ">= ~50%\n";
  return 0;
}

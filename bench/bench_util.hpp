// Shared helpers for the figure-reproduction benches: tiny --key=value flag
// parsing (each bench runs standalone with sensible defaults but can be
// scaled up to paper size), and common experiment plumbing. The
// figure-preset benches load their wiring from scenarios/*.scenario via
// load_preset() and only keep protocol logic (e.g. Fig. 5's derived target
// accuracy) in C++.
#pragma once

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "config/runner.hpp"
#include "config/scenario.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

namespace jwins::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      // string_view parsing (rather than std::string::substr chains, which
      // trip GCC 12's -Wrestrict false positive, GCC PR 105651) keeps
      // -Werror builds clean.
      const std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const std::string_view body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq == std::string_view::npos) {
        values_.insert_or_assign(std::string(body), std::string("1"));
      } else {
        values_.insert_or_assign(std::string(body.substr(0, eq)),
                                 std::string(body.substr(eq + 1)));
      }
    }
  }

  // std::from_chars rather than std::stoul/stod: the latter silently accept
  // negative values (wrapping to huge size_t) and trailing garbage ("5x").
  std::size_t get(const std::string& key, std::size_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t out = 0;
    if (!parse_full(it->second, out)) die(key, it->second, "an unsigned integer");
    return out;
  }

  double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    double out = 0.0;
    if (!parse_full(it->second, out)) die(key, it->second, "a number");
    return out;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  bool contains(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

 private:
  template <typename T>
  static bool parse_full(const std::string& text, T& out) {
    const char* const end = text.data() + text.size();
    const auto [parsed_end, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc{} && parsed_end == end;
  }

  [[noreturn]] static void die(const std::string& key,
                               const std::string& value,
                               const char* expected) {
    std::cerr << "error: --" << key << "=" << value << " is not " << expected
              << "\n";
    std::exit(2);
  }

  std::map<std::string, std::string> values_;
};

/// The --threads flag, defaulting to every hardware thread: the engine is
/// bit-identical at any thread count (docs/DESIGN.md "Determinism &
/// threading model"), so benches take the parallel speedup for free.
inline unsigned thread_flag(const Flags& flags) {
  return static_cast<unsigned>(flags.get(
      "threads",
      static_cast<std::size_t>(net::ThreadPool::default_thread_count())));
}

inline std::unique_ptr<graph::TopologyProvider> static_regular(
    std::size_t nodes, std::size_t degree, unsigned seed) {
  std::mt19937 rng(seed);
  return std::make_unique<graph::StaticTopology>(
      graph::random_regular(nodes, degree, rng));
}

/// Degree schedule matching the paper: 4-regular at the base scale, growing
/// with node count (96:4, 192:5, 288:5, 384:6 -> here scaled down). Shared
/// with the scenario engine's `topology_degree = 0` auto mode.
inline std::size_t degree_for_nodes(std::size_t nodes) {
  return config::auto_degree(nodes);
}

/// Loads a figure's scenario preset: --scenario=PATH override, else the
/// checked-in scenarios/ copy (JWINS_SCENARIO_DIR is baked in by CMake).
inline config::RawScenario load_preset(const Flags& flags,
                                       const char* filename) {
  const std::string fallback = std::string(JWINS_SCENARIO_DIR "/") + filename;
  try {
    return config::load_scenario_file(flags.get("scenario", fallback));
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

/// Forwards a bench flag into the scenario (only when given on the command
/// line, so the preset's value stays the default).
inline void override_if(const Flags& flags, config::RawScenario& raw,
                        const std::string& flag_key,
                        const std::string& scenario_key) {
  if (flags.contains(flag_key)) {
    config::set_value(raw, scenario_key, flags.get(flag_key, std::string{}));
  }
}

}  // namespace jwins::bench

// Shared helpers for the figure-reproduction benches: tiny --key=value flag
// parsing (each bench runs standalone with sensible defaults but can be
// scaled up to paper size), and common experiment plumbing.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

namespace jwins::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::size_t get(const std::string& key, std::size_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoul(it->second);
  }

  double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

inline std::unique_ptr<graph::TopologyProvider> static_regular(
    std::size_t nodes, std::size_t degree, unsigned seed) {
  std::mt19937 rng(seed);
  return std::make_unique<graph::StaticTopology>(
      graph::random_regular(nodes, degree, rng));
}

/// Degree schedule matching the paper: 4-regular at the base scale, growing
/// with node count (96:4, 192:5, 288:5, 384:6 -> here scaled down).
inline std::size_t degree_for_nodes(std::size_t nodes) {
  if (nodes >= 384) return 6;
  if (nodes >= 192) return 5;
  if (nodes >= 16) return 4;
  return 3;
}

}  // namespace jwins::bench

// Figure 3: the randomized cut-off in action.
//
// Left chart: the random sharing percentage selected by each of the 96 nodes
// in one typical round. Right chart: the average sharing percentage across
// nodes over communication rounds (hovers around E[alpha] = 34.3%).

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "core/cutoff.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{96});
  const std::size_t rounds = flags.get("rounds", std::size_t{800});

  const core::RandomizedCutoff cutoff = core::RandomizedCutoff::paper_default();
  std::cout << "=== Figure 3 (left): per-node shared fraction in one round ===\n";
  std::cout << "node,alpha_percent\n";
  std::vector<std::mt19937_64> rngs;
  for (std::size_t i = 0; i < nodes; ++i) rngs.emplace_back(0xA11CE + i);
  for (std::size_t i = 0; i < nodes; ++i) {
    std::cout << i << ',' << cutoff.sample(rngs[i]) * 100.0 << "\n";
  }

  std::cout << "\n=== Figure 3 (right): average shared fraction per round ===\n";
  std::cout << "round,avg_alpha_percent\n";
  double grand_total = 0.0;
  for (std::size_t t = 0; t < rounds; ++t) {
    double total = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) total += cutoff.sample(rngs[i]);
    grand_total += total / static_cast<double>(nodes);
    if (t % 25 == 0 || t + 1 == rounds) {
      std::cout << t << ',' << std::fixed << std::setprecision(2)
                << 100.0 * total / static_cast<double>(nodes) << "\n";
    }
  }
  std::cout << "\nlong-run mean alpha = " << std::setprecision(2)
            << 100.0 * grand_total / static_cast<double>(rounds)
            << "% (analytic E[alpha] = " << 100.0 * cutoff.expected_alpha()
            << "%)\n";
  return 0;
}

// Figure 2: cumulative reconstruction error of DWT vs FFT vs random-sampling
// sparsification during single-node training (10% communication budget).
//
// Protocol (paper §III-A a): train one GN-LeNet-style CNN on the CIFAR-10
// stand-in; after each epoch, sparsify the current model to 10% of its
// floats in each transform domain, reconstruct, and accumulate the MSE
// against the uncompressed model. The paper's result — wavelet loses the
// least information, then FFT, then random sampling — must reproduce.

#include <iomanip>
#include <iostream>
#include <random>

#include "bench_util.hpp"
#include "compress/topk.hpp"
#include "data/partition.hpp"
#include "dwt/dwt.hpp"
#include "dwt/fft.hpp"
#include "nn/flat.hpp"
#include "nn/sgd.hpp"

namespace {

using namespace jwins;

double reconstruction_mse(const std::vector<float>& a,
                          const std::vector<float>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

std::vector<float> dwt_sparsify(const dwt::DwtPlan& plan,
                                const std::vector<float>& x, std::size_t k) {
  const auto coeffs = plan.forward(x);
  const auto keep = compress::topk_indices(coeffs, k);
  std::vector<float> sparse(coeffs.size(), 0.0f);
  for (auto idx : keep) sparse[idx] = coeffs[idx];
  return plan.inverse(sparse);
}

std::vector<float> random_sparsify(const std::vector<float>& x, std::size_t k,
                                   std::uint64_t seed) {
  const auto keep = compress::random_indices(x.size(), k, seed);
  std::vector<float> sparse(x.size(), 0.0f);
  for (auto idx : keep) sparse[idx] = x[idx];
  return sparse;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t epochs = flags.get("epochs", std::size_t{16});
  const double budget = flags.get("budget", 0.10);
  const std::size_t seed = flags.get("seed", std::size_t{1});

  std::cout << "=== Figure 2: cumulative reconstruction error (budget "
            << budget * 100 << "%) ===\n";

  // Single node: the whole CIFAR-like dataset, GN-LeNet-style CNN.
  sim::Workload w = sim::make_cifar_like(1, static_cast<std::uint32_t>(seed));
  auto model = w.model_factory();
  nn::Sgd opt(model->parameters(), model->gradients(), {.learning_rate = 0.05f});
  data::Sampler sampler(*w.train, w.partition[0], 16, seed);

  const std::size_t dim = model->parameter_count();
  const std::size_t k = std::max<std::size_t>(1, static_cast<std::size_t>(
                                                     budget * double(dim)));
  const dwt::DwtPlan plan(dwt::sym2(), dim, 4);

  double cum_wavelet = 0.0, cum_fft = 0.0, cum_random = 0.0;
  std::cout << "epoch,cum_mse_wavelet,cum_mse_fft,cum_mse_random\n";
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    for (std::size_t b = 0; b < sampler.batches_per_epoch(); ++b) {
      const nn::Batch batch = sampler.next();
      model->zero_grad();
      model->loss_and_grad(batch);
      opt.step();
    }
    const std::vector<float> x = nn::to_flat(model->parameters());
    cum_wavelet += reconstruction_mse(x, dwt_sparsify(plan, x, k));
    // A complex FFT bin costs two floats of budget (handled inside).
    cum_fft += reconstruction_mse(x, dwt::fft_sparsify_reconstruct(x, k));
    cum_random += reconstruction_mse(x, random_sparsify(x, k, seed * 131 + epoch));
    std::cout << epoch << ',' << std::setprecision(6) << cum_wavelet << ','
              << cum_fft << ',' << cum_random << "\n";
  }

  std::cout << "\npaper shape check: wavelet < fft < random sampling\n";
  std::cout << "  wavelet " << cum_wavelet << (cum_wavelet < cum_fft ? "  <  " : "  >! ")
            << "fft " << cum_fft << (cum_fft < cum_random ? "  <  " : "  >! ")
            << "random " << cum_random << "\n";
  return 0;
}

// Figure 6: JWINS vs CHOCO-SGD under 20% and 10% communication budgets on
// the CIFAR-10 stand-in.
//
// JWINS uses the paper's two-point alpha distributions
// (20%: p(100%)=0.1,p(10%)=0.9; 10%: p(100%)=0.05,p(5%)=0.95); CHOCO uses
// TopK at the same fraction with the paper's tuned step sizes
// (gamma_20=0.6, gamma_10=0.1). Paper shape: JWINS reaches the target
// accuracy with less data/time, and the gap widens at the lower budget.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{16});
  const std::size_t rounds = flags.get("rounds", std::size_t{120});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const unsigned threads = bench::thread_flag(flags);

  std::cout << "=== Figure 6: JWINS vs CHOCO at low communication budgets ===\n\n";
  const sim::Workload w =
      sim::make_cifar_like(nodes, static_cast<std::uint32_t>(seed));

  struct BudgetSetting {
    const char* label;
    double alpha_low, p_full;  // JWINS two-point distribution
    double choco_fraction, choco_gamma;
  };
  const std::vector<BudgetSetting> budgets{
      {"20%", 0.10, 0.10, 0.20, 0.6},
      {"10%", 0.05, 0.05, 0.10, 0.1},
  };

  for (const auto& b : budgets) {
    auto base_cfg = [&](sim::Algorithm algorithm) {
      sim::ExperimentConfig cfg;
      cfg.algorithm = algorithm;
      cfg.rounds = rounds;
      cfg.local_steps = 2;
      cfg.sgd.learning_rate = 0.05f;
      cfg.eval_every = 5;
      cfg.eval_sample_limit = 192;
      cfg.eval_node_limit = std::min<std::size_t>(nodes, 8);
      cfg.threads = threads;
      cfg.seed = seed;
      return cfg;
    };
    auto topo = [&] {
      return bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                                   static_cast<unsigned>(seed));
    };

    auto jwins_cfg = base_cfg(sim::Algorithm::kJwins);
    jwins_cfg.jwins.cutoff = core::RandomizedCutoff::two_point(b.alpha_low, b.p_full);
    sim::Experiment jw_exp(jwins_cfg, w.model_factory, *w.train, w.partition,
                           *w.test, topo());
    const auto jw = jw_exp.run();

    auto choco_cfg = base_cfg(sim::Algorithm::kChoco);
    choco_cfg.choco.fraction = b.choco_fraction;
    choco_cfg.choco.gamma = b.choco_gamma;
    sim::Experiment choco_exp(choco_cfg, w.model_factory, *w.train,
                              w.partition, *w.test, topo());
    const auto choco = choco_exp.run();

    std::cout << "--- communication budget " << b.label << " (rounds=" << rounds
              << ") ---\n";
    auto row = [&](const char* label, const sim::ExperimentResult& r) {
      std::cout << "  " << std::left << std::setw(10) << label
                << "acc=" << std::fixed << std::setprecision(1)
                << r.final_accuracy * 100.0 << "%  loss=" << std::setprecision(3)
                << r.final_loss
                << "  data/node=" << sim::format_bytes(r.series.back().avg_bytes_per_node)
                << "  sim-time=" << sim::format_seconds(r.sim_seconds) << "\n";
    };
    row("jwins", jw);
    row("choco", choco);
    std::cout << "  accuracy delta (jwins - choco): " << std::setprecision(1)
              << (jw.final_accuracy - choco.final_accuracy) * 100.0 << " pp\n\n";
    sim::print_series_csv(std::cout, std::string("jwins-") + b.label, jw);
    sim::print_series_csv(std::cout, std::string("choco-") + b.label, choco);
    std::cout << "\n";
  }
  std::cout << "paper shape check: jwins accuracy >= choco at equal budget, "
               "gap larger at 10% than 20%\n";
  return 0;
}

// Micro-benchmarks (google-benchmark) for the primitives on JWINS' hot path:
// DWT/IDWT, FFT, TopK, Elias index coding, the float codec, payload
// serialization, partial averaging, and one CNN/LSTM training step.

#include <benchmark/benchmark.h>

#include <random>

#include "compress/elias.hpp"
#include "compress/float_codec.hpp"
#include "compress/topk.hpp"
#include "core/averaging.hpp"
#include "core/sparse_payload.hpp"
#include "dwt/dwt.hpp"
#include "dwt/fft.hpp"
#include "nn/models.hpp"
#include "nn/sgd.hpp"

namespace {

using namespace jwins;

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> out(n);
  for (float& v : out) v = dist(rng);
  return out;
}

void BM_DwtForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const dwt::DwtPlan plan(dwt::sym2(), n, 4);
  const auto x = random_floats(n, 1);
  std::vector<float> coeffs(plan.coeff_length());
  for (auto _ : state) {
    plan.forward_into(x, coeffs);
    benchmark::DoNotOptimize(coeffs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DwtForward)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_DwtInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const dwt::DwtPlan plan(dwt::sym2(), n, 4);
  const auto coeffs = plan.forward(random_floats(n, 2));
  std::vector<float> out(n);
  for (auto _ : state) {
    plan.inverse_into(coeffs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DwtInverse)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FftReal(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_floats(n, 3);
  for (auto _ : state) {
    auto spectrum = dwt::fft_real(x);
    benchmark::DoNotOptimize(spectrum.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FftReal)->Arg(1 << 10)->Arg(1 << 14);

void BM_TopKIndices(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_floats(n, 4);
  for (auto _ : state) {
    auto idx = compress::topk_indices(x, n / 10);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TopKIndices)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_EliasEncodeIndices(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_floats(n, 5);
  const auto indices = compress::topk_indices(x, n / 10);
  for (auto _ : state) {
    auto bytes = compress::encode_index_gaps(indices);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(indices.size()));
}
BENCHMARK(BM_EliasEncodeIndices)->Arg(1 << 12)->Arg(1 << 16);

void BM_EliasDecodeIndices(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_floats(n, 6);
  const auto indices = compress::topk_indices(x, n / 10);
  const auto bytes = compress::encode_index_gaps(indices);
  for (auto _ : state) {
    auto back = compress::decode_index_gaps(bytes, indices.size());
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(indices.size()));
}
BENCHMARK(BM_EliasDecodeIndices)->Arg(1 << 12)->Arg(1 << 16);

void BM_FloatCodecCompress(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_floats(n, 7);
  for (auto _ : state) {
    auto bytes = compress::compress_floats(x);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_FloatCodecCompress)->Arg(1 << 12)->Arg(1 << 16);

void BM_FloatCodecDecompress(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_floats(n, 8);
  const auto bytes = compress::compress_floats(x);
  for (auto _ : state) {
    auto back = compress::decompress_floats(bytes, n);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_FloatCodecDecompress)->Arg(1 << 12)->Arg(1 << 16);

void BM_PayloadEncodeDecode(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::SparsePayload payload;
  payload.vector_length = static_cast<std::uint32_t>(n);
  const auto x = random_floats(n, 9);
  payload.indices = compress::topk_indices(x, n / 10);
  payload.values = compress::gather(x, payload.indices);
  for (auto _ : state) {
    const auto encoded = core::encode_payload(payload, {});
    auto back = core::decode_payload(encoded.body);
    benchmark::DoNotOptimize(back.values.data());
  }
}
BENCHMARK(BM_PayloadEncodeDecode)->Arg(1 << 12)->Arg(1 << 16);

void BM_PartialAverage(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto own = random_floats(n, 10);
  std::vector<core::SparsePayload> payloads(4);
  std::vector<core::WeightedContribution> contribs;
  for (std::size_t j = 0; j < 4; ++j) {
    payloads[j].vector_length = static_cast<std::uint32_t>(n);
    payloads[j].indices = compress::random_indices(n, n / 3, j + 1);
    payloads[j].values = random_floats(n / 3, 11 + static_cast<unsigned>(j));
    contribs.push_back({0.2, &payloads[j]});
  }
  for (auto _ : state) {
    auto x = own;
    core::partial_average(x, 0.2, contribs);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PartialAverage)->Arg(1 << 12)->Arg(1 << 16);

void BM_CnnTrainStep(benchmark::State& state) {
  nn::CnnClassifier::Config cfg;
  nn::CnnClassifier model(cfg, 1);
  nn::Sgd opt(model.parameters(), model.gradients(), {.learning_rate = 0.05f});
  std::mt19937 rng(2);
  nn::Batch batch;
  batch.x = tensor::Tensor::normal({16, 3, 8, 8}, 0.0f, 1.0f, rng);
  batch.labels.resize(16);
  for (std::size_t i = 0; i < 16; ++i) batch.labels[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(model.loss_and_grad(batch));
    opt.step();
  }
}
BENCHMARK(BM_CnnTrainStep);

void BM_LstmTrainStep(benchmark::State& state) {
  nn::CharLstm::Config cfg;
  cfg.vocab = 30;
  cfg.embedding_dim = 12;
  cfg.hidden = 24;
  cfg.layers = 2;
  nn::CharLstm model(cfg, 1);
  nn::Sgd opt(model.parameters(), model.gradients(), {.learning_rate = 0.05f});
  nn::Batch batch;
  batch.x = tensor::Tensor({8, 16});
  batch.labels.resize(8 * 16);
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> tok(0, 29);
  for (std::size_t i = 0; i < batch.x.size(); ++i) {
    batch.x[i] = static_cast<float>(tok(rng));
    batch.labels[i] = tok(rng);
  }
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(model.loss_and_grad(batch));
    opt.step();
  }
}
BENCHMARK(BM_LstmTrainStep);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks for the primitives on JWINS' hot path: DWT/IDWT, TopK,
// Elias index coding, the XOR float codec, payload serialization, partial
// averaging, QSGD quantization, message fan-out, and one CNN/LSTM training
// step.
//
// Every hot-path kernel comes in two variants so the perf trajectory can
// separate algorithmic speed from allocator traffic:
//   * <name>/fresh   — the allocating convenience API (pre-arena behavior)
//   * <name>/scratch — the arena / reused-buffer API the engine runs
//
// Two frontends share the kernel registry:
//   * `--json=PATH` (and any run without Google Benchmark installed) uses a
//     dependency-free steady_clock harness that also reports heap
//     allocations per op via a global operator new/delete counting hook,
//     and emits the stable JSON schema documented in docs/PERFORMANCE.md.
//     BENCH_baseline.json at the repo root is a checked-in snapshot.
//   * with Google Benchmark installed and no --json flag, the kernels are
//     registered with benchmark::RegisterBenchmark for interactive use.
//
// Usage: bench_micro [--json=PATH] [--filter=SUBSTR] [--min-time-ms=N]
//                    [--list]

#ifdef JWINS_HAVE_BENCHMARK
#include <benchmark/benchmark.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "compress/elias.hpp"
#include "compress/float_codec.hpp"
#include "compress/quantize.hpp"
#include "compress/topk.hpp"
#include "core/averaging.hpp"
#include "core/kernel_dispatch.hpp"
#include "core/scratch.hpp"
#include "core/sparse_payload.hpp"
#include "dwt/dwt.hpp"
#include "dwt/fft.hpp"
#include "net/buffer.hpp"
#include "net/serializer.hpp"
#include "nn/models.hpp"
#include "nn/sgd.hpp"

// ---------------------------------------------------------------------------
// Allocation-counting hook: global operator new/delete overrides tallying
// every heap allocation made by this binary. The harness snapshots the
// counters around each timed loop, so allocs/op and bytes/op come straight
// from the allocator, not from estimates. JWINS_NOINLINE keeps the
// replacement functions out of inlined call sites (GCC would otherwise pair
// an inlined std::free with the standard operator new and warn).
#if defined(__GNUC__) || defined(__clang__)
#define JWINS_NOINLINE __attribute__((noinline))
#else
#define JWINS_NOINLINE
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

JWINS_NOINLINE void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

JWINS_NOINLINE void* operator new[](std::size_t size) {
  return ::operator new(size);
}

JWINS_NOINLINE void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

JWINS_NOINLINE void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

JWINS_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
JWINS_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
JWINS_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
JWINS_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}
JWINS_NOINLINE void operator delete(void* p, std::align_val_t) noexcept {
  std::free(p);
}
JWINS_NOINLINE void operator delete[](void* p, std::align_val_t) noexcept {
  std::free(p);
}
JWINS_NOINLINE void operator delete(void* p, std::size_t,
                                    std::align_val_t) noexcept {
  std::free(p);
}
JWINS_NOINLINE void operator delete[](void* p, std::size_t,
                                      std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace jwins;

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> out(n);
  for (float& v : out) v = dist(rng);
  return out;
}

/// Keeps the optimizer honest without Google Benchmark's DoNotOptimize.
#if defined(__GNUC__) || defined(__clang__)
inline void consume(const void* p) {
  asm volatile("" : : "g"(p) : "memory");
}
#else
inline void consume(const void* p) {
  static volatile const void* sink;
  sink = p;
}
#endif

struct Kernel {
  std::string name;   ///< e.g. "dwt_forward/16384/scratch"
  std::string group;  ///< "fig5" (hot path), "choco", or "train"
  std::function<void()> fn;
};

// Kernel state is owned by shared_ptr closures so one registry serves both
// frontends; scratch variants deliberately keep their buffers across
// iterations — that persistence IS the steady state being measured.
std::vector<Kernel> build_kernels() {
  std::vector<Kernel> kernels;
  auto add = [&](std::string name, std::string group, std::function<void()> fn) {
    kernels.push_back({std::move(name), std::move(group), std::move(fn)});
  };
  // Kernels with a scalar/fast dispatch pair (core::KernelDispatch) carry the
  // active tier as a trailing suffix, so a JWINS_FORCE_SCALAR=1 run and a
  // native run of the same binary are distinguishable in the JSON. Consumers
  // comparing across runs strip the suffix (see tests/test_bench_schema.cpp).
  auto add_tiered = [&](std::string name, std::string group,
                        std::function<void()> fn) {
    add(name + "/" + core::KernelDispatch::tier_name(), std::move(group),
        std::move(fn));
  };

  // --- DWT ----------------------------------------------------------------
  {
    const std::size_t n = 1 << 14;
    auto plan = std::make_shared<dwt::DwtPlan>(dwt::sym2(), n, 4);
    auto x = std::make_shared<std::vector<float>>(random_floats(n, 1));
    auto coeffs = std::make_shared<std::vector<float>>(plan->coeff_length());
    add_tiered("dwt_forward/16384/fresh", "fig5", [=] {
      const std::vector<float> out = plan->forward(*x);
      consume(out.data());
    });
    auto ws = std::make_shared<dwt::DwtWorkspace>();
    add_tiered("dwt_forward/16384/scratch", "fig5", [=] {
      plan->forward_into(*x, *coeffs, *ws);
      consume(coeffs->data());
    });
    auto fwd = std::make_shared<std::vector<float>>(plan->forward(*x));
    auto out = std::make_shared<std::vector<float>>(n);
    add_tiered("dwt_inverse/16384/fresh", "fig5", [=] {
      const std::vector<float> back = plan->inverse(*fwd);
      consume(back.data());
    });
    auto ws2 = std::make_shared<dwt::DwtWorkspace>();
    add_tiered("dwt_inverse/16384/scratch", "fig5", [=] {
      plan->inverse_into(*fwd, *out, *ws2);
      consume(out->data());
    });
  }

  // --- TopK ---------------------------------------------------------------
  {
    const std::size_t n = 1 << 16;
    auto x = std::make_shared<std::vector<float>>(random_floats(n, 4));
    add_tiered("topk/65536/fresh", "fig5", [=] {
      const auto idx = compress::topk_indices(*x, n / 10);
      consume(idx.data());
    });
    auto idx = std::make_shared<std::vector<std::uint32_t>>();
    add_tiered("topk/65536/scratch", "fig5", [=] {
      compress::topk_indices_into(*x, n / 10, *idx);
      consume(idx->data());
    });
  }

  // --- Elias index gaps ---------------------------------------------------
  {
    const std::size_t n = 1 << 16;
    const auto values = random_floats(n, 5);
    auto indices = std::make_shared<std::vector<std::uint32_t>>(
        compress::topk_indices(values, n / 10));
    add("elias_encode/6554/fresh", "fig5", [=] {
      const auto bytes = compress::encode_index_gaps(*indices);
      consume(bytes.data());
    });
    auto bits = std::make_shared<compress::BitWriter>();
    add("elias_encode/6554/scratch", "fig5", [=] {
      bits->clear();
      compress::encode_index_gaps(*indices, *bits);
      consume(bits->bytes().data());
    });
    auto encoded = std::make_shared<std::vector<std::uint8_t>>(
        compress::encode_index_gaps(*indices));
    add("elias_decode/6554/fresh", "fig5", [=] {
      const auto back = compress::decode_index_gaps(*encoded, indices->size());
      consume(back.data());
    });
    auto decoded = std::make_shared<std::vector<std::uint32_t>>();
    add("elias_decode/6554/scratch", "fig5", [=] {
      compress::decode_index_gaps_into(*encoded, indices->size(), *decoded);
      consume(decoded->data());
    });
  }

  // --- XOR float codec ----------------------------------------------------
  {
    const std::size_t n = 1 << 14;
    auto x = std::make_shared<std::vector<float>>(random_floats(n, 7));
    add_tiered("xor_compress/16384/fresh", "fig5", [=] {
      const auto bytes = compress::compress_floats(*x);
      consume(bytes.data());
    });
    auto bits = std::make_shared<compress::BitWriter>();
    add_tiered("xor_compress/16384/scratch", "fig5", [=] {
      bits->clear();
      compress::compress_floats(*x, *bits);
      consume(bits->bytes().data());
    });
    auto encoded = std::make_shared<std::vector<std::uint8_t>>(
        compress::compress_floats(*x));
    add_tiered("xor_decompress/16384/fresh", "fig5", [=] {
      const auto back = compress::decompress_floats(*encoded, n);
      consume(back.data());
    });
    auto decoded = std::make_shared<std::vector<float>>();
    add_tiered("xor_decompress/16384/scratch", "fig5", [=] {
      compress::decompress_floats_into(*encoded, n, *decoded);
      consume(decoded->data());
    });
  }

  // --- Payload codec ------------------------------------------------------
  {
    const std::size_t n = 1 << 14;
    auto payload = std::make_shared<core::SparsePayload>();
    payload->vector_length = static_cast<std::uint32_t>(n);
    const auto values = random_floats(n, 9);
    payload->indices = compress::topk_indices(values, n / 10);
    payload->values = compress::gather(values, payload->indices);
    add("payload_encode/16384/fresh", "fig5", [=] {
      const auto encoded = core::encode_payload(*payload, {});
      consume(encoded.body.data());
    });
    auto writer = std::make_shared<net::ByteWriter>();
    auto bits = std::make_shared<compress::BitWriter>();
    add("payload_encode/16384/scratch", "fig5", [=] {
      writer->clear();
      core::encode_payload_into(*payload, {}, *writer, *bits);
      consume(writer->buffer().data());
    });
    auto body = std::make_shared<std::vector<std::uint8_t>>(
        core::encode_payload(*payload, {}).body);
    add("payload_decode/16384/fresh", "fig5", [=] {
      const core::SparsePayload back = core::decode_payload(*body);
      consume(back.values.data());
    });
    auto out = std::make_shared<core::SparsePayload>();
    auto arena = std::make_shared<core::Arena>();
    add("payload_decode/16384/scratch", "fig5", [=] {
      arena->reset();
      core::decode_payload_into(*body, *out, *arena);
      consume(out->values.data());
    });
  }

  // --- Partial averaging --------------------------------------------------
  {
    const std::size_t n = 1 << 14;
    auto own = std::make_shared<std::vector<float>>(random_floats(n, 10));
    auto payloads = std::make_shared<std::vector<core::SparsePayload>>(4);
    auto contribs = std::make_shared<std::vector<core::WeightedContribution>>();
    for (std::size_t j = 0; j < 4; ++j) {
      (*payloads)[j].vector_length = static_cast<std::uint32_t>(n);
      (*payloads)[j].indices = compress::random_indices(n, n / 3, j + 1);
      (*payloads)[j].values =
          random_floats(n / 3, 11 + static_cast<unsigned>(j));
      contribs->push_back({0.2, &(*payloads)[j]});
    }
    auto x = std::make_shared<std::vector<float>>(n);
    // `payloads` must be captured explicitly: contribs holds raw pointers
    // into it, and [=] would only copy the shared_ptrs the body names.
    add("partial_average/16384/fresh", "fig5", [x, own, contribs, payloads] {
      *x = *own;
      core::partial_average(*x, 0.2, *contribs);
      consume(x->data());
    });
    auto arena = std::make_shared<core::Arena>();
    add("partial_average/16384/scratch", "fig5",
        [x, own, contribs, payloads, arena] {
          arena->reset();
          *x = *own;
          core::partial_average(*x, 0.2, *contribs, *arena);
          consume(x->data());
        });
  }

  // --- Message fan-out (share to 4 neighbors) -----------------------------
  {
    const std::size_t n = 1 << 14;
    auto payload = std::make_shared<core::SparsePayload>();
    payload->vector_length = static_cast<std::uint32_t>(n);
    const auto values = random_floats(n, 12);
    payload->indices = compress::topk_indices(values, n / 10);
    payload->values = compress::gather(values, payload->indices);
    auto sink = std::make_shared<std::vector<net::Message>>();
    add("message_fanout4/16384/fresh", "fig5", [=] {
      // Pre-arena behavior: encode into a fresh buffer, then one full body
      // copy per neighbor (Message::body used to be a plain byte vector, so
      // every mailbox got its own heap copy).
      sink->clear();
      const core::EncodedPayload encoded = core::encode_payload(*payload, {});
      for (int j = 0; j < 4; ++j) {
        // Plain copy-assign (not an iterator-range ctor: GCC 12's
        // -Wfree-nonheap-object false-positives on that form at -O2).
        std::vector<std::uint8_t> body_copy = encoded.body;
        net::Message msg;
        msg.body = net::SharedBytes(std::move(body_copy));
        msg.metadata_bytes = encoded.metadata_bytes;
        sink->push_back(std::move(msg));
      }
      consume(sink->data());
    });
    auto pool = std::make_shared<net::BufferPool>();
    auto bits = std::make_shared<compress::BitWriter>();
    add("message_fanout4/16384/scratch", "fig5", [=] {
      // Pooled body, refcount-shared across the 4 receivers.
      sink->clear();
      const net::Message msg =
          core::make_message(0, 0, *payload, {}, *pool, *bits);
      for (int j = 0; j < 4; ++j) sink->push_back(msg);
      consume(sink->data());
    });
  }

  // --- QSGD (CHOCO's quantizing arm) --------------------------------------
  {
    const std::size_t n = 1 << 14;
    auto x = std::make_shared<std::vector<float>>(random_floats(n, 13));
    auto rng = std::make_shared<std::mt19937_64>(17);
    add_tiered("qsgd_quantize/16384/fresh", "choco", [=] {
      const auto q = compress::qsgd_quantize(*x, 15, *rng);
      consume(q.packed.data());
    });
    auto q = std::make_shared<compress::QuantizedVector>();
    add_tiered("qsgd_quantize/16384/scratch", "choco", [=] {
      compress::qsgd_quantize_into(*x, 15, *rng, *q);
      consume(q->packed.data());
    });
  }

  // --- FFT (kept for the reconstruction study; no scratch variant) --------
  {
    const std::size_t n = 1 << 14;
    auto x = std::make_shared<std::vector<float>>(random_floats(n, 3));
    add("fft_real/16384/fresh", "dwt", [=] {
      auto spectrum = dwt::fft_real(*x);
      consume(spectrum.data());
    });
  }

  // --- Model training steps ----------------------------------------------
  {
    nn::CnnClassifier::Config cfg;
    auto model = std::make_shared<nn::CnnClassifier>(cfg, 1);
    auto opt = std::make_shared<nn::Sgd>(model->parameters(),
                                         model->gradients(),
                                         nn::Sgd::Options{.learning_rate = 0.05f});
    auto batch = std::make_shared<nn::Batch>();
    std::mt19937 rng(2);
    batch->x = tensor::Tensor::normal({16, 3, 8, 8}, 0.0f, 1.0f, rng);
    batch->labels.resize(16);
    for (std::size_t i = 0; i < 16; ++i) {
      batch->labels[i] = static_cast<int>(i % 10);
    }
    add("cnn_train_step/fresh", "train", [=] {
      model->zero_grad();
      volatile float loss = model->loss_and_grad(*batch);
      (void)loss;
      opt->step();
    });
  }
  {
    nn::CharLstm::Config cfg;
    cfg.vocab = 30;
    cfg.embedding_dim = 12;
    cfg.hidden = 24;
    cfg.layers = 2;
    auto model = std::make_shared<nn::CharLstm>(cfg, 1);
    auto opt = std::make_shared<nn::Sgd>(model->parameters(),
                                         model->gradients(),
                                         nn::Sgd::Options{.learning_rate = 0.05f});
    auto batch = std::make_shared<nn::Batch>();
    batch->x = tensor::Tensor({8, 16});
    batch->labels.resize(8 * 16);
    std::mt19937 rng(3);
    std::uniform_int_distribution<int> tok(0, 29);
    for (std::size_t i = 0; i < batch->x.size(); ++i) {
      batch->x[i] = static_cast<float>(tok(rng));
      batch->labels[i] = tok(rng);
    }
    add("lstm_train_step/fresh", "train", [=] {
      model->zero_grad();
      volatile float loss = model->loss_and_grad(*batch);
      (void)loss;
      opt->step();
    });
  }

  return kernels;
}

// ---------------------------------------------------------------------------
// Dependency-free harness + JSON emitter

struct KernelResult {
  std::string name;
  std::string group;
  std::uint64_t iterations = 0;
  double ns_per_op = 0.0;
  double allocs_per_op = 0.0;
  double alloc_bytes_per_op = 0.0;
};

KernelResult measure(const Kernel& kernel, double min_time_ms) {
  using clock = std::chrono::steady_clock;
  // Warm up: reach the scratch buffers' steady state (capacities grown,
  // arenas consolidated) before anything is recorded.
  for (int i = 0; i < 3; ++i) kernel.fn();
  // Calibrate batch size until the timed loop spans min_time_ms.
  std::uint64_t iters = 1;
  double elapsed_ns = 0.0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  for (;;) {
    const std::uint64_t count0 = g_alloc_count.load(std::memory_order_relaxed);
    const std::uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
    const auto start = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) kernel.fn();
    elapsed_ns = std::chrono::duration<double, std::nano>(clock::now() - start)
                     .count();
    alloc_count = g_alloc_count.load(std::memory_order_relaxed) - count0;
    alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
    if (elapsed_ns >= min_time_ms * 1e6 || iters >= (1ull << 30)) break;
    const double target = min_time_ms * 1e6 * 1.2;
    const double grow = elapsed_ns > 0 ? target / elapsed_ns : 16.0;
    iters = std::max(iters + 1, static_cast<std::uint64_t>(
                                    static_cast<double>(iters) * grow));
  }
  KernelResult r;
  r.name = kernel.name;
  r.group = kernel.group;
  r.iterations = iters;
  r.ns_per_op = elapsed_ns / static_cast<double>(iters);
  r.allocs_per_op =
      static_cast<double>(alloc_count) / static_cast<double>(iters);
  r.alloc_bytes_per_op =
      static_cast<double>(alloc_bytes) / static_cast<double>(iters);
  return r;
}

// Kernel name with any trailing dispatch-tier suffix removed, so aggregates
// and cross-run comparisons see "topk/65536/scratch" whichever tier ran.
std::string strip_tier(const std::string& name) {
  for (const char* suffix : {"/fast", "/scalar"}) {
    if (name.ends_with(suffix)) {
      return name.substr(0, name.size() - std::strlen(suffix));
    }
  }
  return name;
}

void write_json(std::ostream& os, const std::vector<KernelResult>& results,
                const std::string& filter) {
  // Hand-rolled like sim/report.cpp: stable key order, no dependencies.
  double fig5_fresh = 0.0, fig5_scratch = 0.0;
  double fig5_fresh_bytes = 0.0, fig5_scratch_bytes = 0.0;
  for (const KernelResult& r : results) {
    if (r.group != "fig5") continue;
    const std::string base = strip_tier(r.name);
    if (base.ends_with("/fresh")) {
      fig5_fresh += r.allocs_per_op;
      fig5_fresh_bytes += r.alloc_bytes_per_op;
    } else if (base.ends_with("/scratch")) {
      fig5_scratch += r.allocs_per_op;
      fig5_scratch_bytes += r.alloc_bytes_per_op;
    }
  }
  const double reduction =
      fig5_fresh > 0.0 ? 1.0 - fig5_scratch / fig5_fresh : 0.0;
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  os << "{\n";
  os << "  \"schema\": \"jwins.bench_micro/1\",\n";
  os << "  \"filter\": \"" << filter << "\",\n";
  // Kernel-dispatch provenance lives here, in the bench document — never in
  // experiment result JSON, which must stay byte-identical across tiers.
  os << "  \"host\": {\"kernel_dispatch\": \""
     << core::KernelDispatch::tier_name() << "\", \"compiled_march\": \""
     << core::KernelDispatch::compiled_march() << "\", \"forced_scalar\": "
     << (core::KernelDispatch::env_forced_scalar() ? "true" : "false")
     << "},\n";
  os << "  \"units\": {\"time\": \"ns/op\", \"allocs\": \"count/op\", "
        "\"alloc_bytes\": \"bytes/op\"},\n";
  os << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"group\": \"" << r.group
       << "\", \"iterations\": " << r.iterations
       << ", \"ns_per_op\": " << num(r.ns_per_op)
       << ", \"allocs_per_op\": " << num(r.allocs_per_op)
       << ", \"alloc_bytes_per_op\": " << num(r.alloc_bytes_per_op) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (!filter.empty()) {
    // A filtered run is a partial document: the fig5 aggregate would be
    // computed over a subset and read like a complete trajectory point,
    // so it is omitted on purpose.
    os << "\n}\n";
    return;
  }
  os << ",\n";
  os << "  \"summary\": {\n";
  os << "    \"fig5_fresh_allocs_per_op\": " << num(fig5_fresh) << ",\n";
  os << "    \"fig5_scratch_allocs_per_op\": " << num(fig5_scratch) << ",\n";
  os << "    \"fig5_fresh_alloc_bytes_per_op\": " << num(fig5_fresh_bytes)
     << ",\n";
  os << "    \"fig5_scratch_alloc_bytes_per_op\": " << num(fig5_scratch_bytes)
     << ",\n";
  os << "    \"fig5_alloc_reduction\": " << num(reduction) << "\n";
  os << "  }\n";
  os << "}\n";
}

int run_harness(const std::vector<Kernel>& kernels, const std::string& filter,
                double min_time_ms, const std::string& json_path) {
  std::vector<KernelResult> results;
  for (const Kernel& kernel : kernels) {
    if (!filter.empty() && kernel.name.find(filter) == std::string::npos) {
      continue;
    }
    const KernelResult r = measure(kernel, min_time_ms);
    std::fprintf(stderr, "%-34s %12.1f ns/op %10.2f allocs/op %14.1f B/op\n",
                 r.name.c_str(), r.ns_per_op, r.allocs_per_op,
                 r.alloc_bytes_per_op);
    results.push_back(r);
  }
  if (results.empty()) {
    std::fprintf(stderr, "error: filter matched no kernels\n");
    return 2;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   json_path.c_str());
      return 2;
    }
    write_json(out, results, filter);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  } else {
    write_json(std::cout, results, filter);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string filter;
  double min_time_ms = 20.0;
  bool list_only = false;
  bool force_harness = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      force_harness = true;
    } else if (arg == "--json") {
      force_harness = true;  // JSON to stdout
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(9);
    } else if (arg.rfind("--min-time-ms=", 0) == 0) {
      min_time_ms = std::atof(arg.c_str() + 14);
      if (min_time_ms <= 0.0) {
        std::fprintf(stderr, "error: --min-time-ms must be > 0\n");
        return 2;
      }
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_micro [--json[=PATH]] [--filter=SUBSTR]\n"
          "                   [--min-time-ms=N] [--list]\n"
          "--json uses the dependency-free harness and emits the\n"
          "jwins.bench_micro/1 schema (docs/PERFORMANCE.md). Without --json\n"
          "and with Google Benchmark available, flags are passed through to\n"
          "its runner.\n");
      return 0;
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  const std::vector<Kernel> kernels = build_kernels();
  if (list_only) {
    for (const Kernel& k : kernels) std::printf("%s\n", k.name.c_str());
    return 0;
  }

#ifdef JWINS_HAVE_BENCHMARK
  if (!force_harness) {
    for (const Kernel& k : kernels) {
      if (!filter.empty() && k.name.find(filter) == std::string::npos) continue;
      benchmark::RegisterBenchmark(k.name.c_str(),
                                   [fn = k.fn](benchmark::State& state) {
                                     for (auto _ : state) fn();
                                   });
    }
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
#endif
  (void)force_harness;
  return run_harness(kernels, filter, min_time_ms, json_path);
}

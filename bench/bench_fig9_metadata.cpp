// Figure 9: sparsification metadata size with and without Elias-gamma
// compression on a short CIFAR-10-stand-in run.
//
// Without compression every shared coefficient carries a raw 4-byte index,
// so metadata is the same size as the (32-bit) parameter payload — ~50% of
// the bytes are "wasted". Elias gamma on the index gap array compressed the
// paper's metadata 9.9x.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{16});
  const std::size_t rounds = flags.get("rounds", std::size_t{40});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const unsigned threads = bench::thread_flag(flags);

  std::cout << "=== Figure 9: metadata size without vs with Elias gamma ===\n\n";
  const sim::Workload w =
      sim::make_cifar_like(nodes, static_cast<std::uint32_t>(seed));

  auto run = [&](core::IndexEncoding encoding) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = sim::Algorithm::kJwins;
    cfg.rounds = rounds;
    cfg.local_steps = 2;
    cfg.sgd.learning_rate = 0.05f;
    cfg.eval_every = rounds;
    cfg.eval_sample_limit = 64;
    cfg.eval_node_limit = 2;
    cfg.threads = threads;
    cfg.seed = seed;
    cfg.jwins.index_encoding = encoding;
    // Raw 32-bit values isolate the metadata comparison, matching the
    // figure's "both are essentially 32-bit data types" framing.
    cfg.jwins.value_encoding = core::ValueEncoding::kRaw;
    sim::Experiment experiment(
        cfg, w.model_factory, *w.train, w.partition, *w.test,
        bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                              static_cast<unsigned>(seed)));
    return experiment.run();
  };

  const auto raw = run(core::IndexEncoding::kRaw);
  const auto elias = run(core::IndexEncoding::kEliasGamma);

  const auto raw_total = raw.total_traffic;
  const auto elias_total = elias.total_traffic;
  auto row = [](const char* label, const net::NodeTraffic& t) {
    std::cout << "  " << std::left << std::setw(26) << label
              << "model=" << std::setw(12)
              << sim::format_bytes(static_cast<double>(t.payload_bytes_sent))
              << "metadata=" << std::setw(12)
              << sim::format_bytes(static_cast<double>(t.metadata_bytes_sent))
              << "metadata share=" << std::fixed << std::setprecision(1)
              << 100.0 * static_cast<double>(t.metadata_bytes_sent) /
                     static_cast<double>(t.bytes_sent)
              << "%\n";
  };
  row("no metadata compression", raw_total);
  row("with Elias gamma", elias_total);
  const double ratio = static_cast<double>(raw_total.metadata_bytes_sent) /
                       static_cast<double>(elias_total.metadata_bytes_sent);
  std::cout << "\n  metadata compression ratio: " << std::setprecision(1)
            << ratio << "x (paper: 9.9x)\n";
  std::cout << "\npaper shape check: uncompressed metadata ~= model bytes "
               "(~50% of traffic); Elias gamma shrinks it by ~an order of "
               "magnitude\n";
  return 0;
}

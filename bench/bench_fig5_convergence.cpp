// Figure 5: bytes/rounds to reach random sampling's converged accuracy.
//
// Protocol: run random sampling long, take its best accuracy as the target;
// then run JWINS and full-sharing with target-accuracy stopping. Paper
// shape: JWINS reaches the target in far fewer rounds than random sampling
// (annotated "-N rounds" in the figure) and pushes 1.5-4x less data.
//
// All experiment wiring comes from scenarios/fig5_convergence.scenario
// (override with --scenario=PATH); only the two-stage protocol — the
// derived target accuracy — lives here.

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);

  config::RawScenario raw =
      bench::load_preset(flags, "fig5_convergence.scenario");
  bench::override_if(flags, raw, "nodes", "nodes");
  bench::override_if(flags, raw, "long-rounds", "rounds");
  bench::override_if(flags, raw, "seed", "seed");
  bench::override_if(flags, raw, "threads", "threads");
  bench::override_if(flags, raw, "dataset", "workload");

  std::vector<config::ScenarioRun> runs;
  try {
    runs = config::expand_grid(raw);
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  auto find_run = [&](const std::string& workload, sim::Algorithm algorithm) {
    for (const config::ScenarioRun& r : runs) {
      if (r.workload == workload && r.config.algorithm == algorithm) return r;
    }
    // Reachable via --scenario files that drop an algorithm from the sweep.
    std::cerr << "error: algorithm: the scenario grid has no "
              << sim::algorithm_name(algorithm) << " cell for workload "
              << workload << " (this bench needs all three)\n";
    std::exit(2);
  };
  // Dataset order = first appearance in the expanded grid.
  std::vector<std::string> datasets;
  for (const config::ScenarioRun& r : runs) {
    if (std::find(datasets.begin(), datasets.end(), r.workload) ==
        datasets.end()) {
      datasets.push_back(r.workload);
    }
  }

  std::cout << "=== Figure 5: network cost to reach random sampling's "
               "accuracy ===\n\n";

  for (const std::string& name : datasets) {
    // Step 1: random sampling run long -> target accuracy.
    const auto rs =
        config::execute(find_run(name, sim::Algorithm::kRandomSampling));
    double best = 0.0;
    std::size_t best_round = rs.rounds_run;
    double rs_bytes_at_best = rs.series.back().avg_bytes_per_node;
    for (const auto& p : rs.series) {
      if (p.test_accuracy > best) {
        best = p.test_accuracy;
        best_round = p.round;
        rs_bytes_at_best = p.avg_bytes_per_node;
      }
    }
    const double target = best * 0.98;  // slight slack, as in "reaching the
                                        // identified target accuracy"

    // Step 2: JWINS and full-sharing until the target.
    auto run_to_target = [&](sim::Algorithm algorithm) {
      config::ScenarioRun run = find_run(name, algorithm);
      run.config.target_accuracy = target;
      return config::execute(run);
    };
    const auto jw = run_to_target(sim::Algorithm::kJwins);
    const auto full = run_to_target(sim::Algorithm::kFullSharing);

    std::cout << std::left << std::setw(12) << name << "target accuracy: "
              << std::fixed << std::setprecision(1) << target * 100.0 << "%\n";
    auto row = [&](const char* label, std::size_t rounds, double bytes,
                   bool reached) {
      std::cout << "  " << std::left << std::setw(18) << label
                << "rounds=" << std::setw(8) << rounds
                << "data/node=" << std::setw(12) << sim::format_bytes(bytes)
                << (reached ? "" : "  [target not reached in budget]") << "\n";
    };
    row("random sampling", best_round, rs_bytes_at_best, true);
    row("jwins", jw.rounds_run, jw.series.back().avg_bytes_per_node,
        jw.reached_target);
    row("full-sharing", full.rounds_run, full.series.back().avg_bytes_per_node,
        full.reached_target);
    if (jw.reached_target && best_round > jw.rounds_run) {
      std::cout << "  jwins saves " << (best_round - jw.rounds_run)
                << " rounds vs random sampling ("
                << std::setprecision(2)
                << static_cast<double>(best_round) /
                       static_cast<double>(jw.rounds_run)
                << "x fewer)\n";
    }
    std::cout << "\n";
  }
  std::cout << "paper shape check: jwins rounds << random-sampling rounds; "
               "jwins bytes < random-sampling bytes\n";
  return 0;
}

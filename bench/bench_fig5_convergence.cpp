// Figure 5: bytes/rounds to reach random sampling's converged accuracy.
//
// Protocol: run random sampling long, take its best accuracy as the target;
// then run JWINS and full-sharing with target-accuracy stopping. Paper
// shape: JWINS reaches the target in far fewer rounds than random sampling
// (annotated "-N rounds" in the figure) and pushes 1.5-4x less data.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{16});
  const std::size_t long_rounds = flags.get("long-rounds", std::size_t{160});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const unsigned threads = bench::thread_flag(flags);
  const std::string only = flags.get("dataset", std::string{});

  std::cout << "=== Figure 5: network cost to reach random sampling's "
               "accuracy ===\n\n";

  const std::vector<std::string> datasets =
      only.empty() ? std::vector<std::string>{"cifar", "celeba", "femnist"}
                   : std::vector<std::string>{only};

  for (const auto& name : datasets) {
    const sim::Workload w =
        sim::make_workload(name, nodes, static_cast<std::uint32_t>(seed));

    auto make_config = [&](sim::Algorithm algorithm) {
      sim::ExperimentConfig cfg;
      cfg.algorithm = algorithm;
      cfg.rounds = long_rounds;
      cfg.local_steps = w.suggested_local_steps;
      cfg.sgd.learning_rate = w.suggested_lr;
      cfg.eval_every = 5;
      cfg.eval_sample_limit = 192;
      cfg.eval_node_limit = std::min<std::size_t>(nodes, 8);
      cfg.threads = threads;
      cfg.seed = seed;
      cfg.random_sampling_fraction = 0.37;
      return cfg;
    };
    auto topo = [&] {
      return bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                                   static_cast<unsigned>(seed));
    };

    // Step 1: random sampling run long -> target accuracy.
    sim::Experiment rs_long(make_config(sim::Algorithm::kRandomSampling),
                            w.model_factory, *w.train, w.partition, *w.test,
                            topo());
    const auto rs = rs_long.run();
    double best = 0.0;
    std::size_t best_round = rs.rounds_run;
    double rs_bytes_at_best = rs.series.back().avg_bytes_per_node;
    for (const auto& p : rs.series) {
      if (p.test_accuracy > best) {
        best = p.test_accuracy;
        best_round = p.round;
        rs_bytes_at_best = p.avg_bytes_per_node;
      }
    }
    const double target = best * 0.98;  // slight slack, as in "reaching the
                                        // identified target accuracy"

    // Step 2: JWINS and full-sharing until the target.
    auto run_to_target = [&](sim::Algorithm algorithm) {
      auto cfg = make_config(algorithm);
      cfg.target_accuracy = target;
      sim::Experiment experiment(cfg, w.model_factory, *w.train, w.partition,
                                 *w.test, topo());
      return experiment.run();
    };
    const auto jw = run_to_target(sim::Algorithm::kJwins);
    const auto full = run_to_target(sim::Algorithm::kFullSharing);

    std::cout << std::left << std::setw(12) << name << "target accuracy: "
              << std::fixed << std::setprecision(1) << target * 100.0 << "%\n";
    auto row = [&](const char* label, std::size_t rounds, double bytes,
                   bool reached) {
      std::cout << "  " << std::left << std::setw(18) << label
                << "rounds=" << std::setw(8) << rounds
                << "data/node=" << std::setw(12) << sim::format_bytes(bytes)
                << (reached ? "" : "  [target not reached in budget]") << "\n";
    };
    row("random sampling", best_round, rs_bytes_at_best, true);
    row("jwins", jw.rounds_run, jw.series.back().avg_bytes_per_node,
        jw.reached_target);
    row("full-sharing", full.rounds_run, full.series.back().avg_bytes_per_node,
        full.reached_target);
    if (jw.reached_target && best_round > jw.rounds_run) {
      std::cout << "  jwins saves " << (best_round - jw.rounds_run)
                << " rounds vs random sampling ("
                << std::setprecision(2)
                << static_cast<double>(best_round) /
                       static_cast<double>(jw.rounds_run)
                << "x fewer)\n";
    }
    std::cout << "\n";
  }
  std::cout << "paper shape check: jwins rounds << random-sampling rounds; "
               "jwins bytes < random-sampling bytes\n";
  return 0;
}

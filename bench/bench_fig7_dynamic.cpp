// Figure 7: dynamically changing topology.
//
// Randomizing neighbors each round improves mixing for both full-sharing and
// JWINS; JWINS on a dynamic topology can even beat static full-sharing.
// (CHOCO's error-feedback state cannot follow a changing topology, which is
// why the paper leaves it off this chart.)

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{16});
  const std::size_t rounds = flags.get("rounds", std::size_t{90});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const unsigned threads = bench::thread_flag(flags);

  std::cout << "=== Figure 7: static vs dynamic topology ===\n\n";
  const sim::Workload w =
      sim::make_cifar_like(nodes, static_cast<std::uint32_t>(seed));
  const std::size_t degree = bench::degree_for_nodes(nodes);

  auto run = [&](sim::Algorithm algorithm, bool dynamic) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = algorithm;
    cfg.rounds = rounds;
    cfg.local_steps = 2;
    cfg.sgd.learning_rate = 0.05f;
    cfg.eval_every = 5;
    cfg.eval_sample_limit = 192;
    cfg.eval_node_limit = std::min<std::size_t>(nodes, 8);
    cfg.threads = threads;
    cfg.seed = seed;
    std::unique_ptr<graph::TopologyProvider> topo;
    if (dynamic) {
      topo = std::make_unique<graph::DynamicRegularTopology>(
          nodes, degree, static_cast<std::uint64_t>(seed));
    } else {
      topo = bench::static_regular(nodes, degree, static_cast<unsigned>(seed));
    }
    sim::Experiment experiment(cfg, w.model_factory, *w.train, w.partition,
                               *w.test, std::move(topo));
    return experiment.run();
  };

  const auto full_static = run(sim::Algorithm::kFullSharing, false);
  const auto full_dynamic = run(sim::Algorithm::kFullSharing, true);
  const auto jwins_dynamic = run(sim::Algorithm::kJwins, true);

  auto row = [](const char* label, const sim::ExperimentResult& r) {
    std::cout << "  " << std::left << std::setw(24) << label
              << "acc=" << std::fixed << std::setprecision(1)
              << r.final_accuracy * 100.0 << "%  loss=" << std::setprecision(3)
              << r.final_loss << "\n";
  };
  row("full-sharing static", full_static);
  row("full-sharing dynamic", full_dynamic);
  row("jwins dynamic", jwins_dynamic);
  std::cout << "\n";
  sim::print_series_csv(std::cout, "full-sharing-static", full_static);
  sim::print_series_csv(std::cout, "full-sharing-dynamic", full_dynamic);
  sim::print_series_csv(std::cout, "jwins-dynamic", jwins_dynamic);
  std::cout << "\npaper shape check: dynamic >= static for full-sharing; "
               "jwins-dynamic competitive with full-sharing-static\n";
  return 0;
}

// Figure 7: dynamically changing topology.
//
// Randomizing neighbors each round improves mixing for both full-sharing and
// JWINS; JWINS on a dynamic topology can even beat static full-sharing.
// (CHOCO's error-feedback state cannot follow a changing topology, which is
// why the paper leaves it off this chart.)
//
// Experiment wiring comes from scenarios/fig7_dynamic.scenario (override
// with --scenario=PATH): a 2x2 grid of algorithm x churn_every, of which
// the figure charts three cells.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);

  config::RawScenario raw = bench::load_preset(flags, "fig7_dynamic.scenario");
  bench::override_if(flags, raw, "nodes", "nodes");
  bench::override_if(flags, raw, "rounds", "rounds");
  bench::override_if(flags, raw, "seed", "seed");
  bench::override_if(flags, raw, "threads", "threads");

  std::vector<config::ScenarioRun> runs;
  try {
    runs = config::expand_grid(raw);
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  auto run = [&](sim::Algorithm algorithm, bool dynamic) {
    for (const config::ScenarioRun& r : runs) {
      if (r.config.algorithm == algorithm && (r.churn_every > 0) == dynamic) {
        return config::execute(r);
      }
    }
    std::cerr << "error: algorithm: the scenario grid has no "
              << sim::algorithm_name(algorithm) << "/"
              << (dynamic ? "dynamic" : "static")
              << " cell (this bench charts full-sharing x {static,dynamic} "
                 "and jwins/dynamic)\n";
    std::exit(2);
  };

  std::cout << "=== Figure 7: static vs dynamic topology ===\n\n";
  const auto full_static = run(sim::Algorithm::kFullSharing, false);
  const auto full_dynamic = run(sim::Algorithm::kFullSharing, true);
  const auto jwins_dynamic = run(sim::Algorithm::kJwins, true);

  auto row = [](const char* label, const sim::ExperimentResult& r) {
    std::cout << "  " << std::left << std::setw(24) << label
              << "acc=" << std::fixed << std::setprecision(1)
              << r.final_accuracy * 100.0 << "%  loss=" << std::setprecision(3)
              << r.final_loss << "\n";
  };
  row("full-sharing static", full_static);
  row("full-sharing dynamic", full_dynamic);
  row("jwins dynamic", jwins_dynamic);
  std::cout << "\n";
  sim::print_series_csv(std::cout, "full-sharing-static", full_static);
  sim::print_series_csv(std::cout, "full-sharing-dynamic", full_dynamic);
  sim::print_series_csv(std::cout, "jwins-dynamic", jwins_dynamic);
  std::cout << "\npaper shape check: dynamic >= static for full-sharing; "
               "jwins-dynamic competitive with full-sharing-static\n";
  return 0;
}

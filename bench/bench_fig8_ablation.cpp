// Figure 8: ablation study on the CIFAR-10 stand-in. Each run removes one
// JWINS component: (i) wavelet transform, (ii) accumulation, (iii) the
// randomized cut-off.
//
// Paper shape: every removal hurts test loss, wavelet the most. At this
// reproduction's toy scale (a ~2k-parameter CNN) the wavelet-vs-parameter
// ranking difference sits inside seed noise when the sharing budget is
// generous, so the ablation is run at two budgets: the paper's default alpha
// distribution (E[alpha]=34%) and the constrained 20% two-point budget where
// the energy-compaction advantage of the wavelet ranking becomes visible.
// The deviation is recorded in docs/BENCHMARKS.md.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace jwins;

struct Variant {
  const char* label;
  bool wavelet, accumulation, random_cutoff;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{16});
  const std::size_t rounds = flags.get("rounds", std::size_t{100});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const std::size_t seeds = flags.get("seeds", std::size_t{3});
  const unsigned threads = bench::thread_flag(flags);

  std::cout << "=== Figure 8: JWINS ablation study (" << seeds
            << " seeds averaged) ===\n";

  const std::vector<Variant> variants{
      {"jwins (complete)", true, true, true},
      {"without wavelet", false, true, true},
      {"without accumulation", true, false, true},
      {"without random cut-off", true, true, false},
  };

  struct BudgetSetting {
    const char* label;
    bool budgeted;            // false = paper default distribution
    double alpha_low, p_full; // two-point parameters when budgeted
  };
  const std::vector<BudgetSetting> budgets{
      {"default alpha distribution (E[alpha]=34%)", false, 0, 0},
      {"constrained 20% budget", true, 0.10, 0.10},
  };

  for (const auto& budget : budgets) {
    std::cout << "\n--- " << budget.label << " ---\n";
    struct Avg {
      double loss = 0.0, acc = 0.0;
    };
    std::vector<Avg> averages(variants.size());
    sim::ExperimentResult last_complete;  // series printed for the figure
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto run_seed = static_cast<std::uint32_t>(seed + s);
      const sim::Workload w = sim::make_cifar_like(nodes, run_seed);
      for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const Variant& v = variants[vi];
        sim::ExperimentConfig cfg;
        cfg.algorithm = sim::Algorithm::kJwins;
        cfg.rounds = rounds;
        cfg.local_steps = 2;
        cfg.sgd.learning_rate = w.suggested_lr;
        cfg.eval_every = 10;
        cfg.eval_sample_limit = 192;
        cfg.eval_node_limit = std::min<std::size_t>(nodes, 8);
        cfg.threads = threads;
        cfg.seed = run_seed;
        cfg.jwins.ranker.use_wavelet = v.wavelet;
        cfg.jwins.ranker.use_accumulation = v.accumulation;
        core::RandomizedCutoff base =
            budget.budgeted
                ? core::RandomizedCutoff::two_point(budget.alpha_low, budget.p_full)
                : core::RandomizedCutoff::paper_default();
        cfg.jwins.cutoff = v.random_cutoff
                               ? base
                               : core::RandomizedCutoff::fixed(base.expected_alpha());
        sim::Experiment experiment(
            cfg, w.model_factory, *w.train, w.partition, *w.test,
            bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                                  run_seed));
        const auto result = experiment.run();
        averages[vi].loss += result.final_loss;
        averages[vi].acc += result.final_accuracy;
        if (vi == 0) last_complete = result;
      }
    }
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      std::cout << "  " << std::left << std::setw(26) << variants[vi].label
                << "final test loss=" << std::fixed << std::setprecision(3)
                << averages[vi].loss / static_cast<double>(seeds)
                << "  acc=" << std::setprecision(1)
                << 100.0 * averages[vi].acc / static_cast<double>(seeds)
                << "%\n";
    }
    std::cout << "\n";
    sim::print_series_csv(std::cout,
                          std::string(budget.label) + "/jwins-complete",
                          last_complete);
  }
  std::cout << "\npaper shape check (seed-averaged): removing the wavelet "
               "hurts the most, removing accumulation also hurts — both as "
               "in the paper. The randomized cut-off's benefits (congestion "
               "and herd-behavior avoidance) are population-scale effects "
               "that do not bind at this node count; see docs/BENCHMARKS.md.\n";
  return 0;
}

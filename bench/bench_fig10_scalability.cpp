// Figure 10: scalability study. Node count grows (paper: 96, 192, 288, 384;
// default here 8/16/24/32 for bench speed — pass --scale-up=1 for paper
// sizes) with the degree schedule 4,5,5,6 and the less-strict 4-shards-per-
// node CIFAR partitioning.
//
// Protocol (paper row 2): random sampling runs to convergence and sets the
// target accuracy; both algorithms are then charged the gross bytes (all
// nodes together) they need to reach that target. Paper shape: JWINS beats
// random sampling at every scale, and the gross savings grow with node
// count because every added node ships data every round.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

namespace {

// Engine speedup study: the same seeded 64-node JWINS workload at
// threads = 1 and threads = N. The determinism contract (docs/DESIGN.md)
// guarantees identical results, so this isolates pure wall-clock scaling;
// per-phase timings come from ExperimentResult::wall. Numbers are recorded
// in docs/BENCHMARKS.md. Skip with --speedup=0.
void run_speedup_study(unsigned threads, std::size_t seed) {
  using namespace jwins;
  const std::size_t n = 64;
  const std::size_t rounds = 6;
  const sim::Workload w =
      sim::make_cifar_like_4shard(n, static_cast<std::uint32_t>(seed));
  auto run_with = [&](unsigned t) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = sim::Algorithm::kJwins;
    cfg.rounds = rounds;
    cfg.local_steps = 2;
    cfg.sgd.learning_rate = w.suggested_lr;
    cfg.eval_every = 3;
    cfg.eval_sample_limit = 160;
    cfg.threads = t;
    cfg.seed = seed;
    sim::Experiment experiment(cfg, w.model_factory, *w.train, w.partition,
                               *w.test,
                               bench::static_regular(n, 4, static_cast<unsigned>(seed)));
    return experiment.run();
  };
  const auto seq = run_with(1);
  const auto par = run_with(threads);

  std::cout << "--- engine speedup: " << n << " nodes, " << rounds
            << " jwins rounds, threads 1 vs " << threads << " ---\n";
  std::cout << std::left << std::setw(12) << "PHASE" << std::setw(10) << "SEQ-S"
            << std::setw(10) << "PAR-S" << "SPEEDUP\n";
  const auto row = [](const char* name, double s, double p) {
    std::cout << std::left << std::setw(12) << name << std::setw(10)
              << std::fixed << std::setprecision(3) << s << std::setw(10) << p
              << std::setprecision(2) << (p > 0.0 ? s / p : 0.0) << "x\n";
  };
  row("train", seq.wall.train_seconds, par.wall.train_seconds);
  row("share", seq.wall.share_seconds, par.wall.share_seconds);
  row("aggregate", seq.wall.aggregate_seconds, par.wall.aggregate_seconds);
  row("evaluate", seq.wall.evaluate_seconds, par.wall.evaluate_seconds);
  row("total", seq.wall.total_seconds, par.wall.total_seconds);
  std::cout << "bit-identical check: "
            << (seq.final_accuracy == par.final_accuracy &&
                        seq.total_traffic.bytes_sent == par.total_traffic.bytes_sent
                    ? "holds"
                    : "VIOLATED")
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);
  const std::size_t rounds = flags.get("rounds", std::size_t{120});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const unsigned threads = bench::thread_flag(flags);
  const bool paper_scale = flags.get("scale-up", std::size_t{0}) != 0;

  if (flags.get("speedup", std::size_t{1}) != 0) {
    if (threads > 1) {
      run_speedup_study(threads, seed);
    } else {
      std::cout << "(speedup study skipped: --threads=1 — nothing to compare "
                   "against the sequential engine)\n\n";
    }
  }

  const std::vector<std::size_t> node_counts =
      paper_scale ? std::vector<std::size_t>{96, 192, 288, 384}
                  : std::vector<std::size_t>{8, 16, 24, 32};
  const std::vector<std::size_t> degrees =
      paper_scale ? std::vector<std::size_t>{4, 5, 5, 6}
                  : std::vector<std::size_t>{3, 4, 4, 5};

  std::cout << "=== Figure 10: scalability (4-shard non-IID CIFAR stand-in) ===\n";
  std::cout << "gross bytes = all nodes together, until the target accuracy\n\n";
  std::cout << std::left << std::setw(8) << "NODES" << std::setw(8) << "DEG"
            << std::setw(10) << "TARGET" << std::setw(10) << "RAND-RND"
            << std::setw(10) << "JWINS-RND" << std::setw(16) << "RAND-GROSS"
            << std::setw(16) << "JWINS-GROSS" << "GROSS-SAVINGS\n";

  double prev_savings = -1.0;
  bool savings_grow = true;
  bool accuracy_wins = true;
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const std::size_t n = node_counts[i];
    const sim::Workload w =
        sim::make_cifar_like_4shard(n, static_cast<std::uint32_t>(seed));

    auto make_config = [&](sim::Algorithm algorithm) {
      sim::ExperimentConfig cfg;
      cfg.algorithm = algorithm;
      cfg.rounds = rounds;
      cfg.local_steps = 2;
      cfg.sgd.learning_rate = w.suggested_lr;
      cfg.eval_every = 5;
      cfg.eval_sample_limit = 160;
      cfg.eval_node_limit = std::min<std::size_t>(n, 8);
      cfg.threads = threads;
      cfg.seed = seed;
      cfg.random_sampling_fraction = 0.37;
      return cfg;
    };
    auto topo = [&] {
      return bench::static_regular(n, degrees[i], static_cast<unsigned>(seed));
    };

    // Random sampling run long defines the target.
    sim::Experiment rs_long(make_config(sim::Algorithm::kRandomSampling),
                            w.model_factory, *w.train, w.partition, *w.test,
                            topo());
    const auto rs_full = rs_long.run();
    double best = 0.0;
    for (const auto& p : rs_full.series) best = std::max(best, p.test_accuracy);
    const double target = best * 0.98;

    auto run_to_target = [&](sim::Algorithm algorithm) {
      auto cfg = make_config(algorithm);
      cfg.target_accuracy = target;
      sim::Experiment experiment(cfg, w.model_factory, *w.train, w.partition,
                                 *w.test, topo());
      return experiment.run();
    };
    const auto rs = run_to_target(sim::Algorithm::kRandomSampling);
    const auto jw = run_to_target(sim::Algorithm::kJwins);
    if (!jw.reached_target || jw.rounds_run > rs.rounds_run) accuracy_wins = false;

    const double rand_gross = static_cast<double>(rs.total_traffic.bytes_sent);
    const double jwins_gross = static_cast<double>(jw.total_traffic.bytes_sent);
    const double savings = rand_gross - jwins_gross;
    if (prev_savings >= 0.0 && savings < prev_savings) savings_grow = false;
    prev_savings = savings;

    std::cout << std::left << std::setw(8) << n << std::setw(8) << degrees[i]
              << std::setw(10) << std::fixed << std::setprecision(1)
              << target * 100.0 << std::setw(10) << rs.rounds_run
              << std::setw(10) << jw.rounds_run << std::setw(16)
              << sim::format_bytes(rand_gross) << std::setw(16)
              << sim::format_bytes(jwins_gross) << sim::format_bytes(savings)
              << "\n";
  }
  std::cout << "\npaper shape check: jwins reaches the target in fewer rounds "
            << "at every scale (" << (accuracy_wins ? "holds" : "violated")
            << "); gross savings grow with node count ("
            << (savings_grow ? "holds" : "violated") << ")\n";
  return 0;
}

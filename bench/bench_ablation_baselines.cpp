// Baseline cross-check the paper asserts but does not chart: "POWERGOSSIP is
// another strong communication-efficient algorithm for DL, but it performs
// as good as tuned CHOCO in their experiments. Hence, we only compare
// against CHOCO." (§IV-B c)
//
// This bench runs tuned CHOCO, PowerGossip and JWINS on the CIFAR-10
// stand-in for the same number of rounds and reports accuracy and bytes, so
// the "PowerGossip ~= tuned CHOCO" premise — and JWINS' advantage over both —
// can be inspected directly.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace jwins;
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{16});
  const std::size_t rounds = flags.get("rounds", std::size_t{120});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const unsigned threads = bench::thread_flag(flags);

  std::cout << "=== Baselines: tuned CHOCO vs PowerGossip vs JWINS ===\n\n";
  const sim::Workload w =
      sim::make_cifar_like(nodes, static_cast<std::uint32_t>(seed));

  auto run = [&](sim::Algorithm algorithm, std::size_t algo_rounds) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = algorithm;
    cfg.rounds = algo_rounds;
    cfg.local_steps = 2;
    cfg.sgd.learning_rate = w.suggested_lr;
    cfg.eval_every = 10;
    cfg.eval_sample_limit = 192;
    cfg.eval_node_limit = std::min<std::size_t>(nodes, 8);
    cfg.threads = threads;
    cfg.seed = seed;
    cfg.choco.gamma = 0.6;      // the paper's tuned 20%-budget value
    cfg.choco.fraction = 0.2;
    cfg.power_gossip.gamma = 1.0;
    cfg.jwins.cutoff = core::RandomizedCutoff::two_point(0.10, 0.10);  // 20%
    sim::Experiment experiment(
        cfg, w.model_factory, *w.train, w.partition, *w.test,
        bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                              static_cast<unsigned>(seed)));
    return experiment.run();
  };

  // Equal-BYTE comparison (the paper's budget framing): PowerGossip ships
  // O(sqrt(d)) floats per round, so it gets proportionally more rounds to
  // spend the same byte budget as tuned CHOCO.
  const auto choco = run(sim::Algorithm::kChoco, rounds);
  const auto pg_probe = run(sim::Algorithm::kPowerGossip, 10);
  const double pg_bytes_per_round =
      pg_probe.series.back().avg_bytes_per_node / 10.0;
  const double choco_bytes = choco.series.back().avg_bytes_per_node;
  const std::size_t pg_rounds = std::max<std::size_t>(
      rounds, static_cast<std::size_t>(choco_bytes / pg_bytes_per_round));
  const auto pg = run(sim::Algorithm::kPowerGossip, pg_rounds);
  const auto jw = run(sim::Algorithm::kJwins, rounds);

  auto print = [&](const char* label, const sim::ExperimentResult& r) {
    std::cout << "  " << std::left << std::setw(26) << label
              << "rounds=" << std::setw(6) << r.rounds_run
              << "acc=" << std::fixed << std::setprecision(1)
              << r.final_accuracy * 100.0 << "%  loss=" << std::setprecision(3)
              << r.final_loss << "  data/node="
              << sim::format_bytes(r.series.back().avg_bytes_per_node)
              << "  sim-time=" << sim::format_seconds(r.sim_seconds) << "\n";
  };
  print("choco (tuned, 20%)", choco);
  print("power-gossip (eq-bytes)", pg);
  print("jwins (20% budget)", jw);
  std::cout << "\npaper premise check: |power-gossip - choco| accuracy gap "
               "at equal bytes = "
            << std::fixed << std::setprecision(1)
            << std::abs(pg.final_accuracy - choco.final_accuracy) * 100.0
            << " pp (the paper treats them as roughly equivalent baselines; "
               "both keep per-neighbor state and assume static topologies), "
               "and JWINS beats both.\n";
  return 0;
}

// Design-choice ablations beyond the paper's Figure 8 — the knobs docs/DESIGN.md
// calls out:
//
//  1. wavelet family: the paper reports "we experimented with different
//     wavelet functions and Sym2 outperformed the others"; this sweeps
//     Haar / Db2(=Sym2) / Db4 plus the identity transform, reporting both
//     learning outcome and Figure-2-style reconstruction error.
//  2. decomposition levels: "increasing the levels beyond four did not have
//     any noticeable improvements" — sweeps 1..6 levels.
//  3. CHOCO compressor: TopK (paper) vs QSGD stochastic quantization.
//  4. JWINS band usage: which wavelet bands the ranking actually shares.

#include <iomanip>
#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "compress/topk.hpp"
#include "dwt/dwt.hpp"
#include "nn/flat.hpp"

namespace {

using namespace jwins;

double reconstruction_mse_for(const std::string& wavelet, std::size_t levels,
                              const std::vector<float>& model, double budget) {
  const dwt::DwtPlan plan(dwt::wavelet_by_name(wavelet), model.size(), levels);
  const auto coeffs = plan.forward(model);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(budget * double(coeffs.size())));
  const auto keep = compress::topk_indices(coeffs, k);
  std::vector<float> sparse(coeffs.size(), 0.0f);
  for (auto idx : keep) sparse[idx] = coeffs[idx];
  const auto back = plan.inverse(sparse);
  double err = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    err += (back[i] - model[i]) * (back[i] - model[i]);
  }
  return err / double(model.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t nodes = flags.get("nodes", std::size_t{16});
  const std::size_t rounds = flags.get("rounds", std::size_t{80});
  const std::size_t seed = flags.get("seed", std::size_t{1});
  const unsigned threads = bench::thread_flag(flags);

  const sim::Workload w =
      sim::make_cifar_like(nodes, static_cast<std::uint32_t>(seed));

  auto run_jwins = [&](const std::string& wavelet, std::size_t levels,
                       bool use_wavelet) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = sim::Algorithm::kJwins;
    cfg.rounds = rounds;
    cfg.local_steps = 2;
    cfg.sgd.learning_rate = w.suggested_lr;
    cfg.eval_every = rounds;
    cfg.eval_sample_limit = 192;
    cfg.eval_node_limit = std::min<std::size_t>(nodes, 8);
    cfg.threads = threads;
    cfg.seed = seed;
    cfg.jwins.ranker.wavelet = wavelet;
    cfg.jwins.ranker.levels = levels;
    cfg.jwins.ranker.use_wavelet = use_wavelet;
    sim::Experiment experiment(
        cfg, w.model_factory, *w.train, w.partition, *w.test,
        bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                              static_cast<unsigned>(seed)));
    return experiment.run();
  };

  // A trained model vector for the reconstruction-error column.
  std::vector<float> trained_model;
  {
    auto model = w.model_factory();
    nn::Sgd opt(model->parameters(), model->gradients(),
                {.learning_rate = w.suggested_lr});
    data::Sampler sampler(*w.train, w.partition[0], 16, seed);
    for (int step = 0; step < 200; ++step) {
      const nn::Batch batch = sampler.next();
      model->zero_grad();
      model->loss_and_grad(batch);
      opt.step();
    }
    trained_model = nn::to_flat(model->parameters());
  }

  std::cout << "=== Ablation 1: wavelet family (paper: Sym2 chosen) ===\n";
  std::cout << std::left << std::setw(12) << "WAVELET" << std::setw(10)
            << "ACC" << std::setw(10) << "LOSS" << "RECON-MSE@10%\n";
  for (const char* name : {"haar", "sym2", "db4"}) {
    const auto r = run_jwins(name, 4, true);
    std::cout << std::left << std::setw(12) << name << std::setw(10)
              << std::fixed << std::setprecision(1) << r.final_accuracy * 100.0
              << std::setw(10) << std::setprecision(3) << r.final_loss
              << std::scientific << std::setprecision(2)
              << reconstruction_mse_for(name, 4, trained_model, 0.10)
              << std::defaultfloat << "\n";
  }
  {
    const auto r = run_jwins("sym2", 4, /*use_wavelet=*/false);
    std::cout << std::left << std::setw(12) << "identity" << std::setw(10)
              << std::fixed << std::setprecision(1) << r.final_accuracy * 100.0
              << std::setw(10) << std::setprecision(3) << r.final_loss
              << "(no transform)\n";
  }

  std::cout << "\n=== Ablation 2: decomposition levels (paper: 4) ===\n";
  std::cout << std::left << std::setw(8) << "LEVELS" << "RECON-MSE@10%\n";
  for (std::size_t levels : {1, 2, 3, 4, 5, 6}) {
    std::cout << std::left << std::setw(8) << levels << std::scientific
              << std::setprecision(3)
              << reconstruction_mse_for("sym2", levels, trained_model, 0.10)
              << std::defaultfloat << "\n";
  }

  std::cout << "\n=== Ablation 3: CHOCO compressor (TopK vs QSGD) ===\n";
  for (const bool use_qsgd : {false, true}) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = sim::Algorithm::kChoco;
    cfg.rounds = rounds;
    cfg.local_steps = 2;
    cfg.sgd.learning_rate = w.suggested_lr;
    cfg.eval_every = rounds;
    cfg.eval_sample_limit = 192;
    cfg.eval_node_limit = std::min<std::size_t>(nodes, 8);
    cfg.threads = threads;
    cfg.seed = seed;
    // gamma must be retuned per compressor (CHOCO's documented sensitivity):
    // dense stochastic quantization injects more per-round noise than TopK,
    // so its stable step size is smaller.
    cfg.choco.gamma = use_qsgd ? 0.2 : 0.5;
    cfg.choco.fraction = 0.2;
    cfg.choco.compressor = use_qsgd ? algo::ChocoNode::Compressor::kQsgd
                                    : algo::ChocoNode::Compressor::kTopK;
    cfg.choco.qsgd_levels = 31;
    sim::Experiment experiment(
        cfg, w.model_factory, *w.train, w.partition, *w.test,
        bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                              static_cast<unsigned>(seed)));
    const auto r = experiment.run();
    std::cout << "  " << std::left << std::setw(18)
              << (use_qsgd ? "choco+qsgd(31)" : "choco+topk(20%)")
              << "acc=" << std::fixed << std::setprecision(1)
              << r.final_accuracy * 100.0 << "%  data/node="
              << sim::format_bytes(r.series.back().avg_bytes_per_node) << "\n";
  }

  std::cout << "\n=== Ablation 4: which wavelet bands JWINS shares ===\n";
  {
    sim::ExperimentConfig cfg;
    cfg.algorithm = sim::Algorithm::kJwins;
    cfg.rounds = rounds;
    cfg.local_steps = 2;
    cfg.sgd.learning_rate = w.suggested_lr;
    cfg.eval_every = rounds;
    cfg.eval_sample_limit = 64;
    cfg.eval_node_limit = 2;
    cfg.threads = threads;
    cfg.seed = seed;
    sim::Experiment experiment(
        cfg, w.model_factory, *w.train, w.partition, *w.test,
        bench::static_regular(nodes, bench::degree_for_nodes(nodes),
                              static_cast<unsigned>(seed)));
    experiment.run();
    const auto& counts =
        static_cast<algo::JwinsNode&>(experiment.node(0)).band_share_counts();
    const double total = static_cast<double>(
        std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}));
    const char* band_names[] = {"a4 (coarse)", "d4", "d3", "d2", "d1 (fine)"};
    for (std::size_t b = 0; b < counts.size(); ++b) {
      std::cout << "  " << std::left << std::setw(14)
                << (b < 5 ? band_names[b] : "band") << std::fixed
                << std::setprecision(1) << 100.0 * counts[b] / total << "%\n";
    }
  }

  std::cout << "\npaper shape check: every wavelet family beats the identity "
               "transform on learning accuracy; the differences *between* "
               "families are marginal (the paper likewise picked Sym2 by a "
               "narrow empirical margin), and levels beyond 4 give no "
               "noticeable reconstruction improvement.\n";
  return 0;
}

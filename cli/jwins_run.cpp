// jwins_run — the declarative experiment driver.
//
//   jwins_run <file.scenario> [options]
//
// Loads a .scenario spec (docs/EXPERIMENTS.md is the key reference; the
// simulated-time & fault keys are specified in docs/SIMULATION.md), expands
// its sweep lists into a run grid, executes every cell, streams per-run
// progress to the console, and writes one JSON (full metric series, traffic
// split, per-phase wall-clock, and — for heterogeneous/faulty time models —
// the simulated compute/comm split) plus one CSV (the series) per run, and a
// grid.json index — so downstream plotting needs no C++.
//
// Options:
//   --set key=value   Override/add a scenario key before expansion
//                     (repeatable; the value may be a comma sweep list)
//   --out=DIR         Output root (default jwins_results); files land in
//                     DIR/<scenario-name>/
//   --no-files        Console summary only, write nothing
//   --dry-run         Print the expanded grid and exit without running
//   --list-keys       Print the scenario key reference and exit
//
// Exit codes: 0 success, 2 usage/spec error (message: `error: <key>: <why>`).

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "config/runner.hpp"
#include "config/scenario.hpp"
#include "net/time_model.hpp"
#include "sim/report.hpp"

namespace {

using namespace jwins;

void print_usage(std::ostream& os) {
  os << "usage: jwins_run <file.scenario> [--set key=value]... [--out=DIR]\n"
        "                 [--no-files] [--dry-run] [--list-keys]\n"
        "Scenario key reference: jwins_run --list-keys, or docs/EXPERIMENTS.md\n";
}

void print_key_reference(std::ostream& os) {
  os << "Scenario keys (flat `key = value` lines; any key except `name` may\n"
        "hold a comma-separated sweep list, expanded as a run grid):\n\n";
  for (const config::KeyInfo& k : config::scenario_keys()) {
    os << "  " << std::left << std::setw(26) << k.key << std::setw(8) << k.type
       << "default: " << k.default_value << "\n"
       << std::setw(36) << "" << "valid: " << k.valid << "\n"
       << std::setw(36) << "" << k.description << "\n";
  }
}

/// "workload=cifar,algorithm=jwins" -> "workload-cifar_algorithm-jwins".
std::string file_slug(const std::string& label) {
  std::string slug;
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-') {
      slug += c;
    } else if (c == ',') {
      slug += '_';
    } else {
      slug += '-';
    }
  }
  return slug;
}

std::string describe(const config::ScenarioRun& run) {
  std::string text = "workload=" + run.workload +
                     " algorithm=" + sim::algorithm_name(run.config.algorithm) +
                     " nodes=" + std::to_string(run.nodes) +
                     " rounds=" + std::to_string(run.config.rounds) +
                     " topology=" + run.topology;
  if (run.churn_every > 0) {
    text += " churn_every=" + std::to_string(run.churn_every);
  }
  if (run.config.time.extended()) {
    // Heterogeneous/faulty time model: results carry the sim_time JSON
    // block; the per-run summary line prints the simulated phase split.
    text += " time-model=extended";
  }
  if (run.config.engine == sim::EngineKind::kAsync) {
    text += " engine=async";
    if (run.config.staleness_bound > 0) {
      text += " staleness=" + std::to_string(run.config.staleness_bound);
    }
    if (run.config.async_mode != sim::AsyncMode::kBarrier) {
      text += " mode=";
      text += sim::async_mode_name(run.config.async_mode);
      if (run.config.async_mode == sim::AsyncMode::kWeighted) {
        std::ostringstream decay;
        decay << run.config.staleness_decay;
        text += " decay=" + decay.str();
      }
    }
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string out_dir = "jwins_results";
  std::vector<std::pair<std::string, std::string>> overrides;
  bool write_files = true;
  bool dry_run = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-keys") {
      print_key_reference(std::cout);
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--no-files") {
      write_files = false;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_dir = std::string(arg.substr(6));
    } else if (arg == "--set") {
      if (i + 1 >= argc) {
        std::cerr << "error: --set: expects a following key=value argument\n";
        return 2;
      }
      const std::string_view kv = argv[++i];
      const auto eq = kv.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        std::cerr << "error: --set: \"" << kv << "\" is not key=value\n";
        return 2;
      }
      overrides.emplace_back(std::string(kv.substr(0, eq)),
                             std::string(kv.substr(eq + 1)));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else if (scenario_path.empty()) {
      scenario_path = std::string(arg);
    } else {
      std::cerr << "error: more than one scenario file given\n";
      return 2;
    }
  }
  if (scenario_path.empty()) {
    std::cerr << "error: no scenario file given\n";
    print_usage(std::cerr);
    return 2;
  }

  std::vector<config::ScenarioRun> runs;
  std::string scenario_name;
  try {
    config::RawScenario raw = config::load_scenario_file(scenario_path);
    for (const auto& [key, value] : overrides) {
      config::set_value(raw, key, value);
    }
    runs = config::expand_grid(raw);
    scenario_name = raw.name;
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "scenario " << scenario_name << ": " << runs.size()
            << (runs.size() == 1 ? " run" : " runs") << " ("
            << scenario_path << ")\n";
  if (dry_run) {
    for (const config::ScenarioRun& run : runs) {
      std::cout << "  [" << run.index + 1 << "/" << runs.size() << "] "
                << run.label << "  (" << describe(run) << ")\n";
    }
    return 0;
  }

  namespace fs = std::filesystem;
  fs::path run_dir;
  if (write_files) {
    run_dir = fs::path(out_dir) / scenario_name;
    std::error_code ec;
    fs::create_directories(run_dir, ec);
    if (ec) {
      std::cerr << "error: --out: cannot create " << run_dir.string() << ": "
                << ec.message() << "\n";
      return 2;
    }
  }

  std::ostringstream grid_index;
  grid_index << "[";
  for (const config::ScenarioRun& run : runs) {
    std::cout << "[" << run.index + 1 << "/" << runs.size() << "] "
              << run.label << "  (" << describe(run) << ")" << std::endl;
    if (run.config.time.extended()) {
      // Same construction the Experiment performs, so the printed summary
      // (drawn straggler count included) matches the run exactly.
      const net::TimeModel model(run.nodes, run.config.link, run.config.time,
                                 run.config.seed);
      std::cout << "    time model: " << model.describe() << "\n";
    }
    const sim::ExperimentResult result = config::execute(run);
    std::cout << "    acc=" << std::fixed << std::setprecision(1)
              << result.final_accuracy * 100.0 << "%  loss="
              << std::setprecision(3) << result.final_loss
              << "  rounds=" << result.rounds_run << "  data/node="
              << sim::format_bytes(result.series.empty()
                                       ? 0.0
                                       : result.series.back().avg_bytes_per_node)
              << "  sim-time=" << sim::format_seconds(result.sim_seconds)
              << (result.reached_target ? "  [reached target]" : "") << "\n";
    if (result.sim_time.extended) {
      const sim::SimTimeBreakdown& st = result.sim_time;
      std::cout << "    sim: compute=" << sim::format_seconds(st.compute_seconds)
                << "  comm=" << sim::format_seconds(st.comm_seconds)
                << "  dropped=" << st.dropped_total << " (iid=" << st.dropped_iid
                << " edge=" << st.dropped_edge << " burst=" << st.dropped_burst
                << " crash=" << st.dropped_crash << ")"
                << "  crashed-rounds=" << st.crashed_node_rounds
                << "  stragglers=" << st.stragglers << "\n";
    }
    if (result.event_engine.enabled) {
      const sim::EventEngineStats& ee = result.event_engine;
      std::cout << "    events: processed=" << ee.events_processed
                << "  max-queue=" << ee.max_queue_depth
                << "  delivered=" << ee.messages_delivered
                << "  in-flight=" << ee.messages_in_flight
                << "  stale=" << ee.messages_stale_dropped
                << "  overrides=" << ee.staleness_overrides
                << "  local-steps=" << ee.local_steps_min() << ".."
                << ee.local_steps_max() << "\n";
    }

    if (!write_files) continue;
    char prefix[16];
    std::snprintf(prefix, sizeof prefix, "run%03zu_", run.index);
    const std::string base = prefix + file_slug(run.label);
    const fs::path json_path = run_dir / (base + ".json");
    const fs::path csv_path = run_dir / (base + ".csv");
    {
      std::ofstream json(json_path);
      sim::write_result_json(json, scenario_name + "/" + run.label, result);
    }
    {
      std::ofstream csv(csv_path);
      sim::print_series_csv(csv, scenario_name + "/" + run.label, result);
    }
    grid_index << (run.index == 0 ? "\n" : ",\n");
    grid_index << "  {\"index\": " << run.index
               << ", \"label\": " << sim::json_string(run.label)
               << ", \"json\": " << sim::json_string(base + ".json")
               << ", \"csv\": " << sim::json_string(base + ".csv")
               << ", \"final_accuracy\": "
               << sim::json_number(result.final_accuracy)
               << ", \"final_loss\": " << sim::json_number(result.final_loss)
               << ", \"rounds_run\": " << result.rounds_run << "}";
  }

  if (write_files) {
    grid_index << (runs.empty() ? "]\n" : "\n]\n");
    std::ofstream grid(run_dir / "grid.json");
    grid << grid_index.str();
    std::cout << "wrote " << runs.size() << " result"
              << (runs.size() == 1 ? "" : "s") << " (JSON + CSV) and grid.json"
              << " to " << run_dir.string() << "\n";
  }
  return 0;
}

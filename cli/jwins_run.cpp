// jwins_run — the declarative experiment driver.
//
//   jwins_run <file.scenario> [options]
//
// Loads a .scenario spec (docs/EXPERIMENTS.md is the key reference; the
// simulated-time & fault keys are specified in docs/SIMULATION.md), expands
// its sweep lists into a run grid, executes every cell, streams per-run
// progress to the console, and writes one JSON (full metric series, traffic
// split, per-phase wall-clock, and — for heterogeneous/faulty time models —
// the simulated compute/comm split) plus one CSV (the series) per run, and a
// grid.json index — so downstream plotting needs no C++.
//
// Options:
//   --set key=value   Override/add a scenario key before expansion
//                     (repeatable; the value may be a comma sweep list)
//   --out=DIR         Output root (default jwins_results); files land in
//                     DIR/<scenario-name>/
//   --no-files        Console summary only, write nothing
//   --dry-run         Print the expanded grid and exit without running
//   --shard i/N       Execute only grid cells with index % N == i and write
//                     a grid.shard-i-of-N.json fragment instead of grid.json
//                     (run all N shards — any machines — then --merge)
//   --merge           Merge the shard fragments in DIR/<scenario-name>/ into
//                     a grid.json byte-identical to an unsharded run's, then
//                     exit (no runs are executed)
//   --resume          Skip runs whose result JSON already exists and parses;
//                     their grid entries are rebuilt from the file
//   --list-keys       Print the scenario key reference and exit
//
// Exit codes: 0 success, 2 usage/spec error (message: `error: <key>: <why>`).

#include <iomanip>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "config/scenario.hpp"
#include "config/sweep.hpp"

namespace {

using namespace jwins;

void print_usage(std::ostream& os) {
  os << "usage: jwins_run <file.scenario> [--set key=value]... [--out=DIR]\n"
        "                 [--no-files] [--dry-run] [--shard i/N] [--merge]\n"
        "                 [--resume] [--list-keys]\n"
        "Scenario key reference: jwins_run --list-keys, or docs/EXPERIMENTS.md\n";
}

void print_key_reference(std::ostream& os) {
  os << "Scenario keys (flat `key = value` lines; any key except `name` may\n"
        "hold a comma-separated sweep list, expanded as a run grid):\n\n";
  for (const config::KeyInfo& k : config::scenario_keys()) {
    os << "  " << std::left << std::setw(26) << k.key << std::setw(8) << k.type
       << "default: " << k.default_value << "\n"
       << std::setw(36) << "" << "valid: " << k.valid << "\n"
       << std::setw(36) << "" << k.description << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::vector<std::pair<std::string, std::string>> overrides;
  config::SweepOptions options;
  options.console = &std::cout;
  bool dry_run = false;
  bool merge = false;
  std::string shard_text;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-keys") {
      print_key_reference(std::cout);
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--no-files") {
      options.write_files = false;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--merge") {
      merge = true;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out_dir = std::string(arg.substr(6));
    } else if (arg == "--shard") {
      if (i + 1 >= argc) {
        std::cerr << "error: --shard: expects a following i/N argument\n";
        return 2;
      }
      shard_text = argv[++i];
    } else if (arg == "--set") {
      if (i + 1 >= argc) {
        std::cerr << "error: --set: expects a following key=value argument\n";
        return 2;
      }
      const std::string_view kv = argv[++i];
      const auto eq = kv.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        std::cerr << "error: --set: \"" << kv << "\" is not key=value\n";
        return 2;
      }
      overrides.emplace_back(std::string(kv.substr(0, eq)),
                             std::string(kv.substr(eq + 1)));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else if (scenario_path.empty()) {
      scenario_path = std::string(arg);
    } else {
      std::cerr << "error: more than one scenario file given\n";
      return 2;
    }
  }
  if (scenario_path.empty()) {
    std::cerr << "error: no scenario file given\n";
    print_usage(std::cerr);
    return 2;
  }
  if (merge && !shard_text.empty()) {
    std::cerr << "error: --merge: cannot be combined with --shard\n";
    return 2;
  }
  if (merge && !options.write_files) {
    std::cerr << "error: --merge: cannot be combined with --no-files\n";
    return 2;
  }

  std::vector<config::ScenarioRun> runs;
  std::string scenario_name;
  try {
    if (!shard_text.empty()) options.shard = config::parse_shard(shard_text);
    config::RawScenario raw = config::load_scenario_file(scenario_path);
    for (const auto& [key, value] : overrides) {
      config::set_value(raw, key, value);
    }
    runs = config::expand_grid(raw);
    scenario_name = raw.name;
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (merge) {
    try {
      const std::string dir = options.out_dir + "/" + scenario_name;
      const std::string grid = config::merge_shards(dir);
      std::cout << "merged shard fragments into " << grid << "\n";
    } catch (const config::ScenarioError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    return 0;
  }

  std::cout << "scenario " << scenario_name << ": " << runs.size()
            << (runs.size() == 1 ? " run" : " runs") << " ("
            << scenario_path << ")\n";
  if (dry_run) {
    for (const config::ScenarioRun& run : runs) {
      std::cout << "  [" << run.index + 1 << "/" << runs.size() << "] "
                << run.label << "  (" << config::describe_run(run) << ")"
                << (config::shard_owns(options.shard, run.index)
                        ? ""
                        : "  [other shard]")
                << "\n";
    }
    return 0;
  }

  try {
    config::run_sweep(runs, scenario_name, options);
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
